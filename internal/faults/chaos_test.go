// Chaos suite: drives the canned fault injections through a live
// server over HTTP and pins the robustness contract of ISSUE 7 — a
// panicking shard restarts and the service keeps answering; an
// exhausted restart budget fails the shard but every endpoint still
// returns (an error envelope, never a hang); a wedged shard turns into
// deadline 504s and load-shed 429s, and no accepted point is lost once
// it recovers; dropped replies surface as deadlines; degraded queries
// answer from the surviving shards within the composable-core-set
// envelope. Every test also checks the server winds down without
// leaking goroutines.
package faults_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"divmax"
	"divmax/internal/api"
	"divmax/internal/faults"
	"divmax/internal/server"
)

// startServer runs a server on a test listener and registers a
// goroutine-leak check that fires after the server is fully closed.
func startServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	before := runtime.NumGoroutine()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		checkGoroutines(t, before)
	})
	return srv, ts
}

// checkGoroutines fails the test if the goroutine count has not
// returned to (near) its pre-server level. The slack absorbs runtime
// helpers; transient HTTP connection goroutines get a grace period to
// wind down.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after close\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func do(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func pointsBody(t *testing.T, pts []divmax.Vector) string {
	t.Helper()
	b, err := json.Marshal(api.IngestRequest{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// wantEnvelope asserts the body is the uniform error envelope with the
// given code.
func wantEnvelope(t *testing.T, what string, status, wantStatus int, body []byte, wantCode string) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("%s: status %d (body %s), want %d", what, status, body, wantStatus)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("%s: body %q is not an error envelope: %v", what, body, err)
	}
	if env.Error.Code != wantCode {
		t.Fatalf("%s: envelope code %q (message %q), want %q", what, env.Error.Code, env.Error.Message, wantCode)
	}
}

func getStats(t *testing.T, url string) api.StatsResponse {
	t.Helper()
	status, _, body := do(t, http.MethodGet, url+"/v1/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d: %s", status, body)
	}
	var out api.StatsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardPanicRestartsAndRecovers: a poisoned batch panics the shard
// goroutine mid-fold; the supervisor restarts it with fresh core-sets
// and the service keeps ingesting and answering. The restarted shard's
// honest accounting — the panicked incarnation's points are gone from
// processed counts — is part of the contract.
func TestShardPanicRestartsAndRecovers(t *testing.T) {
	inj := faults.New()
	inj.OnBatch(faults.PanicOnBatch(0, 1))
	_, ts := startServer(t, server.Config{Shards: 1, MaxK: 4, Faults: inj})

	for i, batch := range [][]divmax.Vector{
		{{0, 0}, {1, 0}},    // folds cleanly
		{{2, 0}},            // panics mid-fold: lost with the old core-sets
		{{0, 10}, {10, 10}}, // folds into the fresh incarnation
	} {
		status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, batch))
		if status != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, status, body)
		}
	}
	waitFor(t, "supervisor restart", func() bool {
		st := getStats(t, ts.URL)
		// Batch counters survive the restart: the clean folds before and
		// after the panic both count, the panicked one does not.
		return st.ShardRestarts == 1 && st.Shards[0].Batches == 2
	})

	st := getStats(t, ts.URL)
	sh := st.Shards[0]
	if sh.Health != "healthy" || sh.Panics != 1 || sh.Restarts != 1 {
		t.Fatalf("shard after restart: health=%q panics=%d restarts=%d, want healthy/1/1", sh.Health, sh.Panics, sh.Restarts)
	}
	if st.ShardsFailed != 0 {
		t.Fatalf("shards_failed = %d, want 0", st.ShardsFailed)
	}

	status, _, body := do(t, http.MethodGet, ts.URL+"/v1/query?k=2", "")
	if status != http.StatusOK {
		t.Fatalf("query after restart: status %d: %s", status, body)
	}
	var q api.QueryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	// Only the fresh incarnation's batch survives the restart.
	if q.Processed != 2 || q.Degraded {
		t.Fatalf("query after restart: processed=%d degraded=%v, want 2/false", q.Processed, q.Degraded)
	}

	if status, _, body := do(t, http.MethodGet, ts.URL+"/v1/readyz", ""); status != http.StatusOK {
		t.Fatalf("readyz after restart: status %d: %s", status, body)
	}
}

// TestRestartBudgetExhaustionFailsClosed: with no restart budget the
// first panic fails the shard permanently. Every endpoint that needs it
// answers 503 unavailable — immediately, not after a hang — and the
// failure is visible in /stats.
func TestRestartBudgetExhaustionFailsClosed(t *testing.T) {
	inj := faults.New()
	inj.OnBatch(func(shard, batch int) {
		if shard == 0 {
			panic("poisoned batch")
		}
	})
	_, ts := startServer(t, server.Config{Shards: 2, MaxK: 4, RestartBudget: -1, Faults: inj})

	if status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest",
		pointsBody(t, []divmax.Vector{{0, 0}, {1, 1}})); status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
	waitFor(t, "shard 0 permanent failure", func() bool {
		return getStats(t, ts.URL).ShardsFailed == 1
	})

	st := getStats(t, ts.URL)
	if st.Shards[0].Health != "failed" || st.Shards[1].Health != "healthy" {
		t.Fatalf("health = %q/%q, want failed/healthy", st.Shards[0].Health, st.Shards[1].Health)
	}

	status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, []divmax.Vector{{2, 2}, {3, 3}}))
	wantEnvelope(t, "ingest on failed shard", status, http.StatusServiceUnavailable, body, api.CodeUnavailable)
	status, _, body = do(t, http.MethodPost, ts.URL+"/v1/delete", pointsBody(t, []divmax.Vector{{1, 1}}))
	wantEnvelope(t, "delete on failed shard", status, http.StatusServiceUnavailable, body, api.CodeUnavailable)
	status, _, body = do(t, http.MethodGet, ts.URL+"/v1/query?k=2", "")
	wantEnvelope(t, "fail-closed query", status, http.StatusServiceUnavailable, body, api.CodeUnavailable)

	// Liveness stays up (the process is fine); readiness stays up too —
	// 1 of 2 shards failed is not a majority.
	if status, _, body := do(t, http.MethodGet, ts.URL+"/v1/healthz", ""); status != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", status, body)
	}
	if status, _, body := do(t, http.MethodGet, ts.URL+"/v1/readyz", ""); status != http.StatusOK {
		t.Fatalf("readyz with minority failed: status %d: %s", status, body)
	}
}

// TestReadyzFailedMajority: more than half the shards failed flips
// readiness to 503 while liveness keeps answering ok.
func TestReadyzFailedMajority(t *testing.T) {
	inj := faults.New()
	inj.OnBatch(func(shard, batch int) { panic("poisoned batch") })
	_, ts := startServer(t, server.Config{Shards: 1, MaxK: 4, RestartBudget: -1, Faults: inj})

	if status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest",
		pointsBody(t, []divmax.Vector{{0, 0}})); status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
	waitFor(t, "shard failure", func() bool { return getStats(t, ts.URL).ShardsFailed == 1 })

	status, _, body := do(t, http.MethodGet, ts.URL+"/v1/readyz", "")
	wantEnvelope(t, "readyz with majority failed", status, http.StatusServiceUnavailable, body, api.CodeUnavailable)
	if status, _, body := do(t, http.MethodGet, ts.URL+"/v1/healthz", ""); status != http.StatusOK {
		t.Fatalf("healthz with majority failed: status %d: %s", status, body)
	}
}

// TestWedgedShardShedsAndRecovers: a wedged shard goroutine stops
// draining its queue. Ingest fills the buffer and then sheds with 429;
// queries and deletes return 504/429 within their deadlines instead of
// hanging; and once the wedge releases, every batch that was accepted
// with a 200 is folded — no lost accepted point on the restart-free
// path.
func TestWedgedShardShedsAndRecovers(t *testing.T) {
	inj := faults.New()
	hook, release := faults.Wedge(0)
	inj.OnBatch(hook)
	_, ts := startServer(t, server.Config{
		Shards: 1, MaxK: 4, Buffer: 1, Faults: inj,
		QueryDeadline:  300 * time.Millisecond,
		IngestDeadline: 300 * time.Millisecond,
		ShedWait:       50 * time.Millisecond,
	})
	t.Cleanup(release) // run before server close so drain cannot hang

	// Batch 1 wedges the shard goroutine mid-fold; batch 2 fills the
	// one-slot queue. Both got a 200: both must eventually be folded.
	accepted := 0
	for i, batch := range [][]divmax.Vector{{{0, 0}}, {{1, 1}, {2, 2}}} {
		status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, batch))
		if status != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, status, body)
		}
		accepted += len(batch)
	}

	// Queue full, shard wedged: ingest sheds after the shed wait.
	status, hdr, body := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, []divmax.Vector{{3, 3}}))
	wantEnvelope(t, "ingest on wedged shard", status, http.StatusTooManyRequests, body, api.CodeOverloaded)
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed ingest response carries no Retry-After header")
	}

	// Deletes shed the same way; queries cannot even enqueue their
	// snapshot request and hit the query deadline.
	status, _, body = do(t, http.MethodPost, ts.URL+"/v1/delete", pointsBody(t, []divmax.Vector{{0, 0}}))
	wantEnvelope(t, "delete on wedged shard", status, http.StatusTooManyRequests, body, api.CodeOverloaded)
	status, _, body = do(t, http.MethodGet, ts.URL+"/v1/query?k=2", "")
	wantEnvelope(t, "query on wedged shard", status, http.StatusGatewayTimeout, body, api.CodeDeadlineExceeded)

	st := getStats(t, ts.URL)
	if st.IngestSheds < 2 {
		t.Fatalf("ingest_sheds = %d, want >= 2", st.IngestSheds)
	}
	if st.Shards[0].QueueDepth != 1 {
		t.Fatalf("queue_depth = %d, want 1", st.Shards[0].QueueDepth)
	}

	release()
	waitFor(t, "wedged batches to fold", func() bool {
		return getStats(t, ts.URL).IngestedTotal == int64(accepted)
	})
	status, _, body = do(t, http.MethodGet, ts.URL+"/v1/query?k=2", "")
	if status != http.StatusOK {
		t.Fatalf("query after release: status %d: %s", status, body)
	}
	var q api.QueryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Processed != int64(accepted) || q.Degraded {
		t.Fatalf("query after release: processed=%d degraded=%v, want %d/false", q.Processed, q.Degraded, accepted)
	}
}

// TestDroppedRepliesHitDeadlines: a shard that does the work but never
// replies — the lost-reply failure mode — turns into a 504 for the
// requester, and disarming the hook restores service. The dropped
// delete reply's side effects still happened: the point is gone.
func TestDroppedRepliesHitDeadlines(t *testing.T) {
	inj := faults.New()
	_, ts := startServer(t, server.Config{
		Shards: 1, MaxK: 4, Faults: inj,
		QueryDeadline:  200 * time.Millisecond,
		IngestDeadline: 200 * time.Millisecond,
	})

	if status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest",
		pointsBody(t, []divmax.Vector{{0, 0}, {5, 5}})); status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, body)
	}

	inj.OnSnapshot(faults.DropReplies(0))
	status, _, body := do(t, http.MethodGet, ts.URL+"/v1/query?k=2", "")
	wantEnvelope(t, "query with dropped snapshot reply", status, http.StatusGatewayTimeout, body, api.CodeDeadlineExceeded)
	inj.OnSnapshot(nil)

	inj.OnDelete(faults.DropReplies(0))
	status, _, body = do(t, http.MethodPost, ts.URL+"/v1/delete", pointsBody(t, []divmax.Vector{{0, 0}}))
	wantEnvelope(t, "delete with dropped reply", status, http.StatusGatewayTimeout, body, api.CodeDeadlineExceeded)
	inj.OnDelete(nil)

	status, _, body = do(t, http.MethodGet, ts.URL+"/v1/query?k=2", "")
	if status != http.StatusOK {
		t.Fatalf("query after disarm: status %d: %s", status, body)
	}
	var q api.QueryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	for _, p := range q.Solution {
		if p[0] == 0 && p[1] == 0 {
			t.Fatal("deleted point still in the solution: the dropped-reply delete was not applied")
		}
	}
}

// TestDegradedQueriesSurviveFailedShard: with -degraded-queries, a
// query that cannot reach a failed shard answers from the survivors,
// flagged degraded with the missing-shard count — and the answer stays
// within the composable-core-set quality envelope over the surviving
// shards' ground set (at least half the sequential value, the same
// bound the healthy merge path is held to).
func TestDegradedQueriesSurviveFailedShard(t *testing.T) {
	const shards, k = 4, 4
	inj := faults.New()
	inj.OnBatch(func(shard, batch int) {
		if shard == 3 {
			panic("poisoned batch")
		}
	})
	_, ts := startServer(t, server.Config{
		Shards: shards, MaxK: k, KPrime: 12, RestartBudget: -1,
		DegradedQueries: true, Faults: inj,
	})

	rng := rand.New(rand.NewSource(41))
	centers := []divmax.Vector{{0, 0}, {900, 0}, {0, 900}, {900, 900}, {450, 450}}
	var pts []divmax.Vector
	for i := 0; i < 40; i++ {
		c := centers[i%len(centers)]
		pts = append(pts, divmax.Vector{c[0] + rng.Float64()*10, c[1] + rng.Float64()*10})
	}
	if status, _, body := do(t, http.MethodPost, ts.URL+"/v1/ingest", pointsBody(t, pts)); status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
	waitFor(t, "shard 3 failure", func() bool { return getStats(t, ts.URL).ShardsFailed == 1 })

	status, _, body := do(t, http.MethodGet, fmt.Sprintf("%s/v1/query?k=%d", ts.URL, k), "")
	if status != http.StatusOK {
		t.Fatalf("degraded query: status %d: %s", status, body)
	}
	var q api.QueryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if !q.Degraded || q.ShardsMissing != 1 {
		t.Fatalf("degraded=%v shards_missing=%d, want true/1", q.Degraded, q.ShardsMissing)
	}
	if len(q.Solution) != k {
		t.Fatalf("degraded solution size %d, want %d", len(q.Solution), k)
	}

	// The surviving ground set: round-robin dealing from a fresh server
	// sends point i to shard i % shards; shard 3's slice died with it.
	var surviving []divmax.Vector
	for i, p := range pts {
		if i%shards != 3 {
			surviving = append(surviving, p)
		}
	}
	_, seqVal := divmax.MaxDiversity(divmax.RemoteEdge, surviving, k, divmax.Euclidean)
	val, _ := divmax.Evaluate(divmax.RemoteEdge, q.Solution, divmax.Euclidean)
	if val < seqVal/2 {
		t.Fatalf("degraded value %v below half the sequential value %v over the surviving ground set", val, seqVal)
	}

	if got := getStats(t, ts.URL).DegradedQueries; got < 1 {
		t.Fatalf("degraded_queries = %d, want >= 1", got)
	}
}
