package faults

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"divmax/internal/api"
)

// Network-level fault injection for the coordinator tier. The in-process
// cluster harness wraps each worker's handler in HTTPMiddleware, so the
// coordinator's client sees exactly what a flaky network would show it —
// severed connections, slow links, error bursts, rate limiting — while
// the worker behind the middleware stays healthy (or not, via the shard
// hooks above). Crucially the faults fire BEFORE the worker handler
// runs: a dropped or errored request was never processed, so the
// client's retries and hedges are exercised without double-ingest
// side effects muddying the tests.

// HTTPFault describes what the middleware does to one request. The zero
// value passes the request through untouched. Fields compose in order:
// Drop wins outright; otherwise Delay is applied, then Status (if
// non-zero) answers with the uniform error envelope instead of the
// handler.
type HTTPFault struct {
	// Delay holds the request this long before proceeding (a slow link
	// or an overloaded accept queue). A client that hangs up first
	// severs the connection.
	Delay time.Duration
	// Drop simulates a network partition: the request is never
	// answered — the middleware holds it until the client gives up,
	// then severs the connection without a response. This is what a
	// blackholed TCP flow looks like to the caller: no bytes, then a
	// reset, bounded only by the caller's own deadline.
	Drop bool
	// Status, when non-zero, answers with this HTTP status and the
	// uniform api.ErrorEnvelope instead of invoking the handler (a 5xx
	// burst from a crashing process, a 429 from an overloaded one).
	Status int
	// RetryAfter, in whole seconds, sets a Retry-After header on Status
	// responses when positive — what the client's backoff must honor as
	// a floor.
	RetryAfter int
}

// OnHTTP installs f, consulted by HTTPMiddleware for every inbound
// request with the middleware's worker ID and the request. nil
// uninstalls.
func (in *Injector) OnHTTP(f func(worker int, r *http.Request) HTTPFault) {
	in.mu.Lock()
	in.http = f
	in.mu.Unlock()
}

// HTTP runs the HTTP hook, returning the fault to apply (the zero fault
// when none is installed). Safe on a nil Injector.
func (in *Injector) HTTP(worker int, r *http.Request) HTTPFault {
	if in == nil {
		return HTTPFault{}
	}
	in.mu.Lock()
	f := in.http
	in.mu.Unlock()
	if f == nil {
		return HTTPFault{}
	}
	return f(worker, r)
}

// HTTPMiddleware wraps next with in's network faults, identifying this
// server as worker to the hook. A nil Injector passes everything
// through.
func HTTPMiddleware(in *Injector, worker int, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := in.HTTP(worker, r)
		if f.Drop {
			// Hold until the client abandons the request, then abort the
			// connection without writing a response — the panic is the
			// net/http-sanctioned way to sever mid-request
			// (http.ErrAbortHandler is not logged as a real panic).
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		}
		if f.Delay > 0 {
			select {
			case <-time.After(f.Delay):
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			}
		}
		if f.Status != 0 {
			if f.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(f.RetryAfter))
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(f.Status)
			var env api.ErrorEnvelope
			env.Error.Code = injectedCode(f.Status)
			env.Error.Message = "faults: injected failure"
			json.NewEncoder(w).Encode(env)
			return
		}
		next.ServeHTTP(w, r)
	})
}

func injectedCode(status int) string {
	switch status {
	case http.StatusTooManyRequests:
		return api.CodeOverloaded
	case http.StatusGatewayTimeout:
		return api.CodeDeadlineExceeded
	default:
		return api.CodeUnavailable
	}
}

// pathMatches reports whether the request path's last element matches
// path ("" matches everything; "/v1/snapshot" and its legacy alias both
// match "/snapshot").
func pathMatches(r *http.Request, path string) bool {
	return path == "" || strings.HasSuffix(r.URL.Path, path)
}

// PartitionHTTP returns an HTTP hook that blackholes every request to
// the given workers — the network partition: connections to them hang
// and die, everyone else is untouched.
func PartitionHTTP(workers ...int) func(worker int, r *http.Request) HTTPFault {
	cut := make(map[int]bool, len(workers))
	for _, w := range workers {
		cut[w] = true
	}
	return func(worker int, r *http.Request) HTTPFault {
		return HTTPFault{Drop: cut[worker]}
	}
}

// DelayHTTP returns an HTTP hook that delays worker target's first n
// requests matching path by d (n < 0: every matching request) — a slow
// link or a lagging worker.
func DelayHTTP(target int, path string, n int, d time.Duration) func(worker int, r *http.Request) HTTPFault {
	var arrivals atomic.Int64
	return func(worker int, r *http.Request) HTTPFault {
		if worker != target || !pathMatches(r, path) {
			return HTTPFault{}
		}
		if n >= 0 && int(arrivals.Add(1)) > n {
			return HTTPFault{}
		}
		return HTTPFault{Delay: d}
	}
}

// FlakyDelay returns an HTTP hook that delays every other matching
// request to worker target (the 1st, 3rd, 5th, ...) by d — a flaky
// link where a second attempt tends to take the fast path, which is the
// regime request hedging is built for.
func FlakyDelay(target int, path string, d time.Duration) func(worker int, r *http.Request) HTTPFault {
	var arrivals atomic.Int64
	return func(worker int, r *http.Request) HTTPFault {
		if worker != target || !pathMatches(r, path) {
			return HTTPFault{}
		}
		if arrivals.Add(1)%2 == 1 {
			return HTTPFault{Delay: d}
		}
		return HTTPFault{}
	}
}

// Burst5xx returns an HTTP hook that answers worker target's first n
// matching requests with status (a crash-looping worker's 500s, a
// proxy's 502s); later requests pass through.
func Burst5xx(target int, path string, n, status int) func(worker int, r *http.Request) HTTPFault {
	var arrivals atomic.Int64
	return func(worker int, r *http.Request) HTTPFault {
		if worker != target || !pathMatches(r, path) {
			return HTTPFault{}
		}
		if int(arrivals.Add(1)) > n {
			return HTTPFault{}
		}
		return HTTPFault{Status: status}
	}
}

// RateLimitHTTP returns an HTTP hook that sheds worker target's first n
// matching requests with 429 and a Retry-After of retryAfterSec
// seconds — the load-shedding worker whose hint the client's backoff
// must treat as a floor.
func RateLimitHTTP(target int, path string, n, retryAfterSec int) func(worker int, r *http.Request) HTTPFault {
	var arrivals atomic.Int64
	return func(worker int, r *http.Request) HTTPFault {
		if worker != target || !pathMatches(r, path) {
			return HTTPFault{}
		}
		if int(arrivals.Add(1)) > n {
			return HTTPFault{}
		}
		return HTTPFault{Status: http.StatusTooManyRequests, RetryAfter: retryAfterSec}
	}
}
