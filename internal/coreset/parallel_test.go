package coreset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/metric"
)

func TestGMMParallelMatchesSequential(t *testing.T) {
	// Above the parallel threshold, the sharded relaxation must select
	// exactly the same kernel in the same order as sequential GMM.
	rng := rand.New(rand.NewSource(1))
	pts := randomVectors(rng, 6000, 3)
	for _, workers := range []int{2, 4, 7} {
		seq := GMM(pts, 32, 5, metric.Euclidean)
		par := GMMParallel(pts, 32, 5, workers, metric.Euclidean)
		if len(seq.Indices) != len(par.Indices) {
			t.Fatalf("workers=%d: kernel sizes differ", workers)
		}
		for i := range seq.Indices {
			if seq.Indices[i] != par.Indices[i] {
				t.Fatalf("workers=%d: kernel diverges at %d: %d vs %d", workers, i, seq.Indices[i], par.Indices[i])
			}
		}
		if seq.Radius != par.Radius || seq.LastDist != par.LastDist {
			t.Fatalf("workers=%d: anticover stats differ: (%v,%v) vs (%v,%v)",
				workers, seq.Radius, seq.LastDist, par.Radius, par.LastDist)
		}
		for i := range seq.Assign {
			if seq.Assign[i] != par.Assign[i] {
				t.Fatalf("workers=%d: assignment diverges at %d", workers, i)
			}
		}
	}
}

func TestGMMParallelSmallInputFallsBack(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomVectors(rng, 50+rng.Intn(100), 2)
		k := 2 + rng.Intn(4)
		seq := GMM(pts, k, 0, metric.Euclidean)
		par := GMMParallel(pts, k, 0, 4, metric.Euclidean)
		for i := range seq.Indices {
			if seq.Indices[i] != par.Indices[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGMMParallelDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomVectors(rng, 8000, 2)
	a := GMMParallel(pts, 16, 0, 8, metric.Euclidean)
	b := GMMParallel(pts, 16, 0, 3, metric.Euclidean)
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatal("worker count changed the kernel")
		}
	}
}

func BenchmarkAblationParallelGMM(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := randomVectors(rng, 100000, 3)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GMM(pts, 64, 0, metric.Euclidean)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GMMParallel(pts, 64, 0, 0, metric.Euclidean)
		}
	})
}
