package coreset

import (
	"fmt"

	"divmax/internal/metric"
)

// Weighted is one pair (p, m_p) of a generalized core-set: a kernel point
// together with its multiplicity (the number of delegates it stands for,
// including itself). Multiplicities are always positive.
type Weighted[P any] struct {
	Point P
	Mult  int
}

// Generalized is a generalized core-set (Section 6): a set of
// (point, multiplicity) pairs with pairwise-distinct points. Its
// expansion is the multiset where each point appears Mult times, with
// replicas treated as distinct points at distance zero.
type Generalized[P any] []Weighted[P]

// Size returns s(T), the number of pairs.
func (g Generalized[P]) Size() int { return len(g) }

// ExpandedSize returns m(T) = Σ m_p, the size of the expansion.
func (g Generalized[P]) ExpandedSize() int {
	total := 0
	for _, w := range g {
		total += w.Mult
	}
	return total
}

// Split returns the points and multiplicities as parallel slices, the
// form consumed by diversity.EvaluateWeighted and the generalized
// sequential solvers.
func (g Generalized[P]) Split() ([]P, []int) {
	pts := make([]P, len(g))
	mult := make([]int, len(g))
	for i, w := range g {
		pts[i] = w.Point
		mult[i] = w.Mult
	}
	return pts, mult
}

// Expand materializes the expansion: each point repeated Mult times.
func (g Generalized[P]) Expand() []P {
	out := make([]P, 0, g.ExpandedSize())
	for _, w := range g {
		for r := 0; r < w.Mult; r++ {
			out = append(out, w.Point)
		}
	}
	return out
}

// Validate checks the structural invariants (positive multiplicities) and
// returns a descriptive error on violation. Distinctness of points cannot
// be checked generically (P is an arbitrary type) and is the constructor's
// responsibility.
func (g Generalized[P]) Validate() error {
	for i, w := range g {
		if w.Mult <= 0 {
			return fmt.Errorf("coreset: generalized core-set pair %d has non-positive multiplicity %d", i, w.Mult)
		}
	}
	return nil
}

// Coherent reports whether sub ⊑ g under an index correspondence: sub must
// pick pairs of g (identified by position via idx) with multiplicities not
// exceeding g's. idx[i] is the position in g of sub[i]'s kernel point.
// This mirrors the paper's coherent-subset relation, which the generalized
// sequential solvers must respect (Fact 2).
func Coherent[P any](sub, g Generalized[P], idx []int) bool {
	if len(idx) != len(sub) {
		return false
	}
	seen := make(map[int]bool, len(idx))
	for i, j := range idx {
		if j < 0 || j >= len(g) || seen[j] {
			return false
		}
		seen[j] = true
		if sub[i].Mult > g[j].Mult {
			return false
		}
	}
	return true
}

// Instantiate computes a δ-instantiation I(T) of the generalized core-set
// g from the ground set source (Lemma 7): for each pair (p, m_p) it picks
// m_p distinct points of source within distance delta of p (p itself
// counts when present in source), with all picks disjoint across pairs.
//
// Assignment is two-phase. Phase 1 offers each source point to its
// globally nearest kernel point: when that pair still needs delegates the
// point is taken, otherwise it is retained as a spare (the paper's "a
// point must be retained as long as the appropriate delegate count ...
// has not been met"). Phase 2 fills any remaining counts from the spares,
// first fit within delta. For core-sets produced by GMMGen from source
// with delta at least the kernel radius, phase 1 alone always completes:
// every cluster fills its capped count from its own members. It returns
// an error when some pair cannot be filled, which signals that delta is
// below the true clustering radius.
func Instantiate[P any](g Generalized[P], source []P, delta float64, d metric.Distance[P]) ([]P, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	need := make([]int, len(g))
	total := 0
	for i, w := range g {
		need[i] = w.Mult
		total += w.Mult
	}
	out := make([]P, 0, total)
	remaining := total
	var spares []P
	for _, q := range source {
		if remaining == 0 {
			break
		}
		// Globally nearest kernel point.
		best, bestDist := -1, delta
		for i, w := range g {
			if dist := d(w.Point, q); dist <= bestDist {
				best, bestDist = i, dist
			}
		}
		if best < 0 {
			continue // outside δ of every kernel point
		}
		if need[best] > 0 {
			need[best]--
			remaining--
			out = append(out, q)
		} else if len(spares) < total {
			spares = append(spares, q)
		}
	}
	// Phase 2: first-fit spares into still-unfilled pairs.
	for _, q := range spares {
		if remaining == 0 {
			break
		}
		for i, w := range g {
			if need[i] > 0 && d(w.Point, q) <= delta {
				need[i]--
				remaining--
				out = append(out, q)
				break
			}
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("coreset: δ-instantiation incomplete: %d of %d delegates unfilled at δ=%v", remaining, total, delta)
	}
	return out, nil
}

// Merge concatenates generalized core-sets (the round-2 aggregation of the
// 3-round MapReduce algorithm). Points are assumed distinct across inputs,
// which holds when the inputs were built from disjoint partitions.
func Merge[P any](parts ...Generalized[P]) Generalized[P] {
	var total int
	for _, p := range parts {
		total += len(p)
	}
	out := make(Generalized[P], 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
