package coreset

import (
	"fmt"
	"math/rand"
	"testing"

	"divmax/internal/metric"
)

func benchPoints(n int) []metric.Vector {
	rng := rand.New(rand.NewSource(1))
	return randomVectors(rng, n, 3)
}

// BenchmarkGMMFastVsGeneric pits the flat squared-distance kernel
// against the generic Distance[P] scan (reached through a wrapper the
// dispatcher does not recognize). Note the baseline here wraps the
// CURRENT four-lane Euclidean — a slightly faster (so conservative)
// baseline than the pre-PR in-order-sum distance that cmd/bench
// reconstructs for the committed BENCH_PR2.json trajectory, whose GMM
// n=100k/d=8 cell carries the PR's ≥2× acceptance number.
func BenchmarkGMMFastVsGeneric(b *testing.B) {
	generic := func(a, c metric.Vector) float64 { return metric.Euclidean(a, c) }
	for _, cfg := range []struct{ n, dim int }{{10000, 2}, {10000, 8}, {100000, 8}} {
		rng := rand.New(rand.NewSource(7))
		pts := randomVectors(rng, cfg.n, cfg.dim)
		const kprime = 64
		b.Run(fmt.Sprintf("n=%d/d=%d/fast", cfg.n, cfg.dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GMM(pts, kprime, 0, metric.Euclidean)
			}
			b.ReportMetric(float64(cfg.n)*float64(kprime)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
		b.Run(fmt.Sprintf("n=%d/d=%d/generic", cfg.n, cfg.dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GMM(pts, kprime, 0, metric.Distance[metric.Vector](generic))
			}
			b.ReportMetric(float64(cfg.n)*float64(kprime)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

func BenchmarkGMM(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, kprime := range []int{16, 128} {
			pts := benchPoints(n)
			b.Run(fmt.Sprintf("n=%d/k'=%d", n, kprime), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					GMM(pts, kprime, 0, metric.Euclidean)
				}
			})
		}
	}
}

func BenchmarkGMMExt(b *testing.B) {
	pts := benchPoints(10000)
	b.Run("k=16/k'=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GMMExt(pts, 16, 64, 0, metric.Euclidean)
		}
	})
}

func BenchmarkGMMGen(b *testing.B) {
	pts := benchPoints(10000)
	b.Run("k=16/k'=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GMMGen(pts, 16, 64, 0, metric.Euclidean)
		}
	})
}

func BenchmarkInstantiate(b *testing.B) {
	pts := benchPoints(10000)
	gen := GMMGen(pts, 16, 64, 0, metric.Euclidean)
	radius := GMM(pts, 64, 0, metric.Euclidean).Radius
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Instantiate(gen, pts, radius+1e-9, metric.Euclidean); err != nil {
			b.Fatal(err)
		}
	}
}
