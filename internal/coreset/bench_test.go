package coreset

import (
	"fmt"
	"math/rand"
	"testing"

	"divmax/internal/metric"
)

func benchPoints(n int) []metric.Vector {
	rng := rand.New(rand.NewSource(1))
	return randomVectors(rng, n, 3)
}

func BenchmarkGMM(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, kprime := range []int{16, 128} {
			pts := benchPoints(n)
			b.Run(fmt.Sprintf("n=%d/k'=%d", n, kprime), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					GMM(pts, kprime, 0, metric.Euclidean)
				}
			})
		}
	}
}

func BenchmarkGMMExt(b *testing.B) {
	pts := benchPoints(10000)
	b.Run("k=16/k'=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GMMExt(pts, 16, 64, 0, metric.Euclidean)
		}
	})
}

func BenchmarkGMMGen(b *testing.B) {
	pts := benchPoints(10000)
	b.Run("k=16/k'=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GMMGen(pts, 16, 64, 0, metric.Euclidean)
		}
	})
}

func BenchmarkInstantiate(b *testing.B) {
	pts := benchPoints(10000)
	gen := GMMGen(pts, 16, 64, 0, metric.Euclidean)
	radius := GMM(pts, 64, 0, metric.Euclidean).Radius
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Instantiate(gen, pts, radius+1e-9, metric.Euclidean); err != nil {
			b.Fatal(err)
		}
	}
}
