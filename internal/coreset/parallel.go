package coreset

import (
	"math"
	"runtime"
	"sync"

	"divmax/internal/metric"
)

// GMMParallel is GMM with the O(n) distance-relaxation step of each
// iteration sharded across worker goroutines. It returns exactly the same
// Result as GMM (the reduction resolves ties by lowest index, matching
// the sequential scan), trading goroutine overhead for throughput on
// large inputs with expensive distances. workers ≤ 0 means
// runtime.NumCPU().
//
// This is an engineering extension beyond the paper: the paper's
// per-reducer work is sequential, and the MapReduce drivers default to
// plain GMM; BenchmarkAblationParallelGMM quantifies the crossover.
//
// Like GMM, it dispatches to the flat squared-distance kernel when the
// points are metric.Vector under metric.Euclidean (fastgmm.go).
func GMMParallel[P any](pts []P, k, start, workers int, d metric.Distance[P]) Result[P] {
	n := len(pts)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Below the crossover the goroutine overhead dominates; fall back.
	const minParallel = 4096
	if n < minParallel || workers == 1 {
		return GMM(pts, k, start, d)
	}
	if k < 1 {
		panic("coreset: GMMParallel requires k >= 1")
	}
	if start < 0 || start >= n {
		panic("coreset: GMMParallel start index out of range")
	}
	if k > n {
		k = n
	}
	if res, ok := gmmFastParallel(pts, k, start, workers, d); ok {
		return res
	}

	res := Result[P]{
		Points:  make([]P, 0, k),
		Indices: make([]int, 0, k),
		Assign:  make([]int, n),
	}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	res.LastDist = math.Inf(1)

	type shardMax struct {
		idx  int
		dist float64
	}
	shards := workers
	chunk := (n + shards - 1) / shards
	maxes := make([]shardMax, shards)
	var wg sync.WaitGroup

	cur := start
	last := shardMax{idx: -1, dist: -1}
	for sel := 0; sel < k; sel++ {
		if sel > 0 {
			res.LastDist = minDist[cur]
		}
		res.Points = append(res.Points, pts[cur])
		res.Indices = append(res.Indices, cur)
		center := pts[cur]
		for s := 0; s < shards; s++ {
			lo := s * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				maxes[s] = shardMax{idx: -1, dist: -1}
				continue
			}
			wg.Add(1)
			go func(s, lo, hi, sel int) {
				defer wg.Done()
				best := shardMax{idx: lo, dist: -1}
				for i := lo; i < hi; i++ {
					if dist := d(center, pts[i]); dist < minDist[i] {
						minDist[i] = dist
						res.Assign[i] = sel
					}
					if minDist[i] > best.dist {
						best = shardMax{idx: i, dist: minDist[i]}
					}
				}
				maxes[s] = best
			}(s, lo, hi, sel)
		}
		wg.Wait()
		// Reduce shard maxima; lowest index wins ties, matching GMM.
		next := shardMax{idx: -1, dist: -1}
		for _, sm := range maxes {
			if sm.idx >= 0 && (sm.dist > next.dist || (sm.dist == next.dist && next.idx >= 0 && sm.idx < next.idx)) {
				next = sm
			}
		}
		cur = next.idx
		last = next
	}
	// The final reduce already holds the maximum fully relaxed
	// min-distance, which is r_T — no O(n) re-scan needed.
	if last.dist > 0 {
		res.Radius = last.dist
	}
	return res
}
