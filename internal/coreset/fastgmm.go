package coreset

import (
	"math"
	"sync"

	"divmax/internal/metric"
)

// Euclidean-over-Vector fast path for the farthest-first traversal.
//
// The traversal only ever compares distances with one another, so it can
// run on squared Euclidean distances over a flat row-major copy of the
// input (metric.Points) and take square roots only where Result reports
// real distances (Radius, LastDist). The kernels accumulate in the same
// order as metric.Euclidean, so the squared values are exactly the
// squares the generic path feeds to math.Sqrt and the selected indices,
// assignments, Radius, and LastDist are bit-identical — the equivalence
// tests in fast_test.go and the fuzz target pin this down. (The one
// theoretical exception: two distinct squared distances so close that
// correctly-rounded sqrt collapses them to the same float64, which the
// generic path would treat as a tie; that needs the squares to differ
// by under one unit in the last place.)

// euclideanVectors reports whether the (pts, d) pair is Euclidean
// distance over dense vectors, unlocking the flat kernels.
func euclideanVectors[P any](pts []P, d metric.Distance[P]) ([]metric.Vector, bool) {
	if !metric.IsEuclidean(d) {
		return nil, false
	}
	vecs, ok := any(pts).([]metric.Vector)
	return vecs, ok
}

// gmmScratch pools the traversal's internal buffers — the flat
// row-major copy of the input and the min-distance array — so repeated
// constructions (MapReduce reducers, the experiment sweeps, benchmarks)
// skip the multi-megabyte allocate-and-fault per call. Only buffers
// that never escape the call are pooled; Assign, Points, and Indices
// are returned to the caller and always freshly allocated.
var gmmScratch = sync.Pool{New: func() any { return new(scratchBuffers) }}

type scratchBuffers struct {
	flat  metric.Points
	minSq []float64
	// ccSq holds, during one relaxation pass, the squared distances
	// from the newly selected center to every earlier center (indexed
	// by selection id) — the cached bounds of the blocked tier's
	// triangle-inequality pruning.
	ccSq []float64
}

// ccSqInit returns sc.ccSq resized to k (contents overwritten per pass).
func (sc *scratchBuffers) ccSqInit(k int) []float64 {
	if cap(sc.ccSq) < k {
		sc.ccSq = make([]float64, k)
	}
	return sc.ccSq[:k]
}

// gmmFast dispatches the validated traversal (1 ≤ k ≤ len(pts), start in
// range) to the flat kernel. ok=false — non-Vector points, a distance
// other than metric.Euclidean, or rows of mixed dimension — keeps the
// generic path, which also preserves the generic path's panic on mixed
// dimensions.
func gmmFast[P any](pts []P, k, start int, d metric.Distance[P]) (Result[P], bool) {
	vecs, ok := euclideanVectors(pts, d)
	if !ok {
		return Result[P]{}, false
	}
	sc := gmmScratch.Get().(*scratchBuffers)
	if !sc.flat.Fill(vecs) {
		gmmScratch.Put(sc)
		return Result[P]{}, false
	}
	res := gmmFlat(vecs, sc, k, start)
	gmmScratch.Put(sc)
	out, _ := any(res).(Result[P])
	return out, true
}

// minSqInit returns sc.minSq resized to n and reset to +Inf.
func (sc *scratchBuffers) minSqInit(n int) []float64 {
	if cap(sc.minSq) < n {
		sc.minSq = make([]float64, n)
	}
	minSq := sc.minSq[:n]
	inf := math.Inf(1)
	for i := range minSq {
		minSq[i] = inf
	}
	return minSq
}

// gmmFlat is gmmGeneric over a flat store: one RelaxMinSqRange pass per
// selected center, square roots only at the Result boundary. The
// returned Points alias rows of pts, exactly as the generic path's do.
//
// At d ≥ metric.BlockedMinDim the later passes run the pruned blocked
// relax: each pass first computes the squared distances from the new
// center to every earlier center (SqBetween, so the values are
// consistent with the minSq entries they gate), then skips every row
// whose assigned center is provably closer than the new one can be —
// on clustered data that turns all but the first few passes from
// O(n·d) memory traffic into an O(n) scan of minSq/assign. The pruned
// pass is bit-identical to the unpruned blocked pass (pinned by the
// envelope harness), so the Result does not depend on pruning.
func gmmFlat(pts []metric.Vector, sc *scratchBuffers, k, start int) Result[metric.Vector] {
	n := len(pts)
	res := Result[metric.Vector]{
		Points:  make([]metric.Vector, 0, k),
		Indices: make([]int, 0, k),
		Assign:  make([]int, n),
	}
	minSq := sc.minSqInit(n)
	res.LastDist = math.Inf(1)
	pruned := sc.flat.Dim() >= metric.BlockedMinDim
	var ccSq []float64
	if pruned {
		ccSq = sc.ccSqInit(k)
	}

	cur := start
	nextSq := math.Inf(-1)
	for sel := 0; sel < k; sel++ {
		if sel > 0 {
			res.LastDist = math.Sqrt(minSq[cur])
		}
		res.Points = append(res.Points, pts[cur])
		res.Indices = append(res.Indices, cur)
		if pruned && sel > 0 {
			for j := 0; j < sel; j++ {
				ccSq[j] = sc.flat.SqBetween(cur, res.Indices[j])
			}
			cur, nextSq = sc.flat.RelaxMinSqPrunedRange(0, n, cur, sel, ccSq, minSq, res.Assign, cur, math.Inf(-1))
		} else {
			cur, nextSq = sc.flat.RelaxMinSqRange(0, n, cur, sel, minSq, res.Assign, cur, math.Inf(-1))
		}
	}
	if nextSq > 0 {
		res.Radius = math.Sqrt(nextSq)
	}
	return res
}

// gmmFastParallel is gmmFlat with each relaxation pass sharded across
// worker goroutines through metric's RelaxMinSqParallel, whose
// lowest-index reduce returns exactly the same (next, nextSq) as the
// sequential pass — so the Result is identical to GMM's. Arguments are
// validated and clamped by GMMParallel.
func gmmFastParallel[P any](pts []P, k, start, workers int, d metric.Distance[P]) (Result[P], bool) {
	vecs, ok := euclideanVectors(pts, d)
	if !ok {
		return Result[P]{}, false
	}
	sc := gmmScratch.Get().(*scratchBuffers)
	if !sc.flat.Fill(vecs) {
		gmmScratch.Put(sc)
		return Result[P]{}, false
	}
	defer gmmScratch.Put(sc)
	flat := &sc.flat
	n := len(vecs)
	res := Result[metric.Vector]{
		Points:  make([]metric.Vector, 0, k),
		Indices: make([]int, 0, k),
		Assign:  make([]int, n),
	}
	minSq := sc.minSqInit(n)
	res.LastDist = math.Inf(1)
	pruned := flat.Dim() >= metric.BlockedMinDim
	var ccSq []float64
	if pruned {
		ccSq = sc.ccSqInit(k)
	}

	cur := start
	lastSq := -1.0
	for sel := 0; sel < k; sel++ {
		if sel > 0 {
			res.LastDist = math.Sqrt(minSq[cur])
		}
		res.Points = append(res.Points, vecs[cur])
		res.Indices = append(res.Indices, cur)
		if pruned && sel > 0 {
			for j := 0; j < sel; j++ {
				ccSq[j] = flat.SqBetween(cur, res.Indices[j])
			}
			cur, lastSq = flat.RelaxMinSqPrunedParallel(cur, sel, workers, ccSq, minSq, res.Assign)
		} else {
			cur, lastSq = flat.RelaxMinSqParallel(cur, sel, workers, minSq, res.Assign)
		}
	}
	if lastSq > 0 {
		res.Radius = math.Sqrt(lastSq)
	}
	out, _ := any(res).(Result[P])
	return out, true
}
