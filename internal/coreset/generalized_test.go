package coreset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/metric"
)

func TestGeneralizedSizeExpansion(t *testing.T) {
	g := Generalized[metric.Vector]{
		{Point: metric.Vector{0}, Mult: 2},
		{Point: metric.Vector{5}, Mult: 1},
		{Point: metric.Vector{9}, Mult: 3},
	}
	if g.Size() != 3 {
		t.Errorf("Size = %d, want 3", g.Size())
	}
	if g.ExpandedSize() != 6 {
		t.Errorf("ExpandedSize = %d, want 6", g.ExpandedSize())
	}
	exp := g.Expand()
	if len(exp) != 6 {
		t.Fatalf("Expand length = %d, want 6", len(exp))
	}
	if exp[0][0] != 0 || exp[1][0] != 0 || exp[2][0] != 5 || exp[5][0] != 9 {
		t.Errorf("Expand = %v", exp)
	}
	pts, mult := g.Split()
	if len(pts) != 3 || mult[2] != 3 {
		t.Errorf("Split = %v, %v", pts, mult)
	}
}

func TestGeneralizedValidate(t *testing.T) {
	good := Generalized[metric.Vector]{{Point: metric.Vector{1}, Mult: 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	bad := Generalized[metric.Vector]{{Point: metric.Vector{1}, Mult: 0}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate(bad): expected error")
	}
}

func TestCoherent(t *testing.T) {
	g := Generalized[metric.Vector]{
		{Point: metric.Vector{0}, Mult: 3},
		{Point: metric.Vector{5}, Mult: 2},
	}
	sub := Generalized[metric.Vector]{
		{Point: metric.Vector{0}, Mult: 2},
		{Point: metric.Vector{5}, Mult: 2},
	}
	if !Coherent(sub, g, []int{0, 1}) {
		t.Error("expected coherent")
	}
	// Excess multiplicity.
	over := Generalized[metric.Vector]{{Point: metric.Vector{5}, Mult: 3}}
	if Coherent(over, g, []int{1}) {
		t.Error("multiplicity excess must not be coherent")
	}
	// Duplicate pair reference.
	dup := Generalized[metric.Vector]{
		{Point: metric.Vector{0}, Mult: 1},
		{Point: metric.Vector{0}, Mult: 1},
	}
	if Coherent(dup, g, []int{0, 0}) {
		t.Error("duplicate index must not be coherent")
	}
	// Bad index / length mismatch.
	if Coherent(sub, g, []int{0}) || Coherent(sub, g, []int{0, 7}) {
		t.Error("bad index vectors must not be coherent")
	}
}

func TestInstantiateFillsAllCounts(t *testing.T) {
	// Two clusters; kernel = cluster centers with multiplicities.
	source := []metric.Vector{{0}, {0.1}, {0.2}, {10}, {10.1}, {10.2}}
	g := Generalized[metric.Vector]{
		{Point: metric.Vector{0}, Mult: 3},
		{Point: metric.Vector{10}, Mult: 2},
	}
	out, err := Instantiate(g, source, 0.5, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("instantiation size = %d, want 5", len(out))
	}
	// Each delegate must lie within δ of some kernel point.
	for _, q := range out {
		d0 := metric.Euclidean(q, g[0].Point)
		d1 := metric.Euclidean(q, g[1].Point)
		if d0 > 0.5 && d1 > 0.5 {
			t.Errorf("delegate %v outside δ of both kernel points", q)
		}
	}
}

func TestInstantiateDeltaTooSmall(t *testing.T) {
	source := []metric.Vector{{0}, {10}}
	g := Generalized[metric.Vector]{{Point: metric.Vector{0}, Mult: 2}}
	if _, err := Instantiate(g, source, 0.5, metric.Euclidean); err == nil {
		t.Fatal("expected error when counts cannot be filled")
	}
}

func TestInstantiateDisjointDelegates(t *testing.T) {
	// Exactly as many source points as needed: every one must be used
	// exactly once.
	source := []metric.Vector{{0}, {1}, {2}}
	g := Generalized[metric.Vector]{
		{Point: metric.Vector{0}, Mult: 2},
		{Point: metric.Vector{2}, Mult: 1},
	}
	out, err := Instantiate(g, source, 2.5, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, q := range out {
		if seen[q[0]] {
			t.Fatalf("delegate %v assigned twice", q)
		}
		seen[q[0]] = true
	}
	if len(out) != 3 {
		t.Fatalf("instantiation size = %d, want 3", len(out))
	}
}

func TestInstantiateInvalidMultiplicity(t *testing.T) {
	g := Generalized[metric.Vector]{{Point: metric.Vector{0}, Mult: -1}}
	if _, err := Instantiate(g, []metric.Vector{{0}}, 1, metric.Euclidean); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestInstantiateFromGMMGenRadius(t *testing.T) {
	// Instantiating a GMM-GEN core-set from its own source at δ = kernel
	// radius must always succeed: every cluster has enough points within
	// radius of its center by construction.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomVectors(rng, 15+rng.Intn(40), 2)
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(4)
		gen := GMMGen(pts, k, kprime, 0, metric.Euclidean)
		res := GMM(pts, kprime, 0, metric.Euclidean)
		out, err := Instantiate(gen, pts, res.Radius+1e-9, metric.Euclidean)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return len(out) == gen.ExpandedSize()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := Generalized[metric.Vector]{{Point: metric.Vector{0}, Mult: 1}}
	b := Generalized[metric.Vector]{{Point: metric.Vector{1}, Mult: 2}}
	m := Merge(a, b)
	if m.Size() != 2 || m.ExpandedSize() != 3 {
		t.Fatalf("Merge = %+v", m)
	}
	if empty := Merge[metric.Vector](); empty.Size() != 0 {
		t.Fatalf("Merge() = %+v, want empty", empty)
	}
}
