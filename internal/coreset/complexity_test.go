package coreset

import (
	"math/rand"
	"testing"

	"divmax/internal/metric"
)

// Complexity-claim tests: the paper's cost statements, verified by
// counting distance evaluations rather than timing.

func TestGMMDistanceComplexity(t *testing.T) {
	// GMM performs exactly k·n distance evaluations (one relaxation pass
	// per selected center).
	rng := rand.New(rand.NewSource(1))
	n, k := 500, 12
	pts := randomVectors(rng, n, 2)
	c := metric.NewCounter(metric.Euclidean)
	GMM(pts, k, 0, c.Distance())
	if got, want := c.Calls(), int64(k*n); got != want {
		t.Fatalf("GMM used %d distance calls, want exactly %d", got, want)
	}
}

func TestGMMExtDistanceComplexity(t *testing.T) {
	// GMM-EXT adds no distance evaluations beyond its kernel GMM: the
	// clustering reuses the traversal's assignments.
	rng := rand.New(rand.NewSource(2))
	n, k, kprime := 400, 4, 16
	pts := randomVectors(rng, n, 2)
	c := metric.NewCounter(metric.Euclidean)
	GMMExt(pts, k, kprime, 0, c.Distance())
	if got, want := c.Calls(), int64(kprime*n); got != want {
		t.Fatalf("GMM-EXT used %d distance calls, want exactly %d", got, want)
	}
}

func TestInstantiateDistanceComplexity(t *testing.T) {
	// Instantiate is O(s(T)·|source|): each source point is compared with
	// each kernel point at most once in phase 1, plus phase-2 spare
	// scans bounded by the same product.
	rng := rand.New(rand.NewSource(3))
	pts := randomVectors(rng, 300, 2)
	gen := GMMGen(pts, 4, 8, 0, metric.Euclidean)
	radius := GMM(pts, 8, 0, metric.Euclidean).Radius
	c := metric.NewCounter(metric.Euclidean)
	if _, err := Instantiate(gen, pts, radius+1e-9, c.Distance()); err != nil {
		t.Fatal(err)
	}
	bound := int64(2 * gen.Size() * len(pts))
	if got := c.Calls(); got > bound {
		t.Fatalf("Instantiate used %d distance calls, bound %d", got, bound)
	}
}
