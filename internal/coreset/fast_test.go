package coreset

import (
	"math"
	"math/rand"
	"testing"

	"divmax/internal/metric"
	"divmax/internal/testutil"
)

// genericEuclid has the same semantics as metric.Euclidean but is a
// distinct function, so IsEuclidean does not recognize it and every
// construction driven by it takes the generic path. The equivalence
// tests below use it as the reference implementation.
func genericEuclid(a, b metric.Vector) float64 { return metric.Euclidean(a, b) }

// tieHeavyVectors draws coordinates from a small integer grid, so the
// input is dense with exact duplicate points and exactly tied distances
// — the regime where any tie-breaking divergence between the fast and
// generic paths would surface.
func tieHeavyVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = float64(rng.Intn(4))
		}
		pts[i] = v
	}
	return pts
}

// sameResult requires identical selections and assignments on both
// paths at every dimension. The reported real distances (Radius,
// LastDist) are bit-compared below metric.BlockedMinDim, where the flat
// kernels are pinned bit-identical to the generic scan; at and above it
// the blocked tier reassociates the summation, so they are compared
// within a relative envelope instead (still ~10⁴ tighter than any
// algebraic mistake, and exact duplicates/integer grids continue to
// match bitwise).
func sameResult(t *testing.T, label string, dim int, fast, slow Result[metric.Vector]) {
	t.Helper()
	if len(fast.Indices) != len(slow.Indices) {
		t.Fatalf("%s: fast selected %d points, generic %d", label, len(fast.Indices), len(slow.Indices))
	}
	for i := range fast.Indices {
		if fast.Indices[i] != slow.Indices[i] {
			t.Fatalf("%s: selection %d differs: fast index %d, generic index %d",
				label, i, fast.Indices[i], slow.Indices[i])
		}
	}
	for i := range fast.Assign {
		if fast.Assign[i] != slow.Assign[i] {
			t.Fatalf("%s: assignment of point %d differs: fast %d, generic %d",
				label, i, fast.Assign[i], slow.Assign[i])
		}
	}
	sameDist := func(name string, a, b float64) {
		t.Helper()
		if dim >= metric.BlockedMinDim {
			if !testutil.WithinRel(a, b, 1e-9) {
				t.Fatalf("%s: %s outside envelope: fast %v, generic %v", label, name, a, b)
			}
			return
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: %s differs: fast %v, generic %v", label, name, a, b)
		}
	}
	sameDist("Radius", fast.Radius, slow.Radius)
	sameDist("LastDist", fast.LastDist, slow.LastDist)
}

// TestGMMFastPathDispatches pins that Euclidean-over-Vector actually
// takes the flat kernel (a regression here would silently turn the fast
// path off and only show up in benchmarks).
func TestGMMFastPathDispatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomVectors(rng, 50, 3)
	if _, ok := gmmFast(pts, 5, 0, metric.Euclidean); !ok {
		t.Fatal("gmmFast rejected Euclidean over Vector")
	}
	if _, ok := gmmFast(pts, 5, 0, metric.Distance[metric.Vector](genericEuclid)); ok {
		t.Fatal("gmmFast accepted a wrapper distance")
	}
	if _, ok := gmmFast(pts, 5, 0, metric.Manhattan); ok {
		t.Fatal("gmmFast accepted Manhattan")
	}
	ragged := []metric.Vector{{1, 2}, {3}}
	if _, ok := gmmFast(ragged, 1, 0, metric.Euclidean); ok {
		t.Fatal("gmmFast accepted ragged input")
	}
}

// TestGMMFastMatchesGeneric is the tentpole equivalence test: across
// seeds, dimensions, kernel sizes, starts, and tie-heavy inputs, the
// flat squared-distance traversal selects bit-identical indices,
// assignments, Radius, and LastDist.
func TestGMMFastMatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, dim := range []int{1, 2, 3, 4, 8, 32} {
			for _, n := range []int{1, 2, 7, 120} {
				var pts []metric.Vector
				if seed%2 == 0 {
					pts = randomVectors(rng, n, dim)
				} else {
					pts = tieHeavyVectors(rng, n, dim)
				}
				k := 1 + rng.Intn(n+3) // exercises k > n clamping too
				start := rng.Intn(n)
				fast := GMM(pts, k, start, metric.Euclidean)
				slow := GMM(pts, k, start, metric.Distance[metric.Vector](genericEuclid))
				sameResult(t, "GMM", dim, fast, slow)
			}
		}
	}
}

// TestGMMParallelFastMatchesSequential: the sharded flat traversal must
// agree with the sequential one (which TestGMMFastMatchesGeneric ties to
// the generic scan), including on duplicate-heavy inputs where the
// reduce step's tie-breaking matters.
func TestGMMParallelFastMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5000 // above the minParallel crossover
		var pts []metric.Vector
		if seed%2 == 0 {
			pts = randomVectors(rng, n, 3)
		} else {
			pts = tieHeavyVectors(rng, n, 2)
		}
		k := 1 + rng.Intn(24)
		start := rng.Intn(n)
		for _, workers := range []int{2, 3, 8} {
			par := GMMParallel(pts, k, start, workers, metric.Euclidean)
			seq := GMM(pts, k, start, metric.Euclidean)
			sameResult(t, "GMMParallel", len(pts[0]), par, seq)
		}
	}
}

// TestGMMExtGenFastMatchesGeneric: the delegate and multiplicity
// constructions are pure functions of the kernel Result, so they must
// produce identical core-sets on both paths.
func TestGMMExtGenFastMatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := tieHeavyVectors(rng, 80, 2)
		if seed%2 == 0 {
			pts = randomVectors(rng, 80, 3)
		}
		k := 2 + rng.Intn(4)
		kprime := k + rng.Intn(6)
		fastExt := GMMExt(pts, k, kprime, 0, metric.Euclidean)
		slowExt := GMMExt(pts, k, kprime, 0, metric.Distance[metric.Vector](genericEuclid))
		if len(fastExt) != len(slowExt) {
			t.Fatalf("GMMExt sizes differ: fast %d, generic %d", len(fastExt), len(slowExt))
		}
		for i := range fastExt {
			if metric.Euclidean(fastExt[i], slowExt[i]) != 0 {
				t.Fatalf("GMMExt point %d differs", i)
			}
		}
		fastGen := GMMGen(pts, k, kprime, 0, metric.Euclidean)
		slowGen := GMMGen(pts, k, kprime, 0, metric.Distance[metric.Vector](genericEuclid))
		if len(fastGen) != len(slowGen) {
			t.Fatalf("GMMGen sizes differ: fast %d, generic %d", len(fastGen), len(slowGen))
		}
		for i := range fastGen {
			if fastGen[i].Mult != slowGen[i].Mult || metric.Euclidean(fastGen[i].Point, slowGen[i].Point) != 0 {
				t.Fatalf("GMMGen pair %d differs: fast %+v, generic %+v", i, fastGen[i], slowGen[i])
			}
		}
	}
}

// TestGMMRadiusFoldMatchesRescan guards the folded Radius: it must equal
// an explicit post-hoc re-scan of the clustering radius.
func TestGMMRadiusFoldMatchesRescan(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := randomVectors(rng, 60, 2)
		k := 1 + rng.Intn(8)
		for _, d := range []metric.Distance[metric.Vector]{metric.Euclidean, genericEuclid, metric.Manhattan} {
			res := GMM(pts, k, 0, d)
			want := metric.Range(pts, res.Points, d)
			if math.Float64bits(res.Radius) != math.Float64bits(want) {
				t.Fatalf("seed %d: folded Radius %v != re-scan %v", seed, res.Radius, want)
			}
		}
	}
}

// FuzzGMMFastEquivalence drives both paths with byte-quantized
// coordinates (heavy exact ties and duplicates) and arbitrary k/start.
func FuzzGMMFastEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 0, 0, 9, 9}, uint8(3), uint8(0), uint8(2))
	f.Add([]byte{5, 5, 5, 5}, uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, startRaw, dimRaw uint8) {
		dim := 1 + int(dimRaw)%4
		var pts []metric.Vector
		for i := 0; i+dim <= len(data); i += dim {
			v := make(metric.Vector, dim)
			for j := 0; j < dim; j++ {
				v[j] = float64(data[i+j])
			}
			pts = append(pts, v)
		}
		if len(pts) == 0 {
			return
		}
		k := 1 + int(kRaw)%8
		start := int(startRaw) % len(pts)
		fast := GMM(pts, k, start, metric.Euclidean)
		slow := GMM(pts, k, start, metric.Distance[metric.Vector](genericEuclid))
		sameResult(t, "GMM", dim, fast, slow)
	})
}
