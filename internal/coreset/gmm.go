// Package coreset implements the composable core-set constructions at the
// heart of the paper: GMM (the Gonzalez farthest-first traversal, a
// (1+ε)-composable core-set for remote-edge and remote-cycle, Theorem 4),
// GMM-EXT (Algorithm 1: kernel plus delegate points, a (1+ε)-composable
// core-set for remote-clique, -star, -bipartition, and -tree, Theorem 5),
// and GMM-GEN (kernel plus multiplicities, a composable *generalized*
// core-set, Lemma 8), together with the generalized core-set machinery of
// Section 6 (coherent subsets, expansion, δ-instantiation).
package coreset

import (
	"fmt"
	"math"

	"divmax/internal/metric"
)

// Result carries a GMM kernel together with the anticover quantities used
// by the theory (and by the tests that verify it).
type Result[P any] struct {
	// Points is the selected kernel, in selection order.
	Points []P
	// Indices are the positions of Points in the input slice.
	Indices []int
	// Radius is r_T = max_{p∈S} d(p, T), the clustering radius of the
	// kernel. The anticover property guarantees Radius ≤ LastDist.
	Radius float64
	// LastDist is the distance from the last selected center to the
	// previously selected ones (d_k in Lemma 5). Every pairwise distance
	// within the kernel is at least LastDist.
	LastDist float64
	// Assign[i] is the index into Points of the kernel point closest to
	// input point i, with ties broken toward the earliest-selected center
	// (the "p ∉ C_h with h < j" rule of Algorithm 1).
	Assign []int
}

// GMM runs the Gonzalez farthest-first traversal and returns the first
// min(k, len(pts)) selected points. It is the paper's core-set for
// remote-edge and remote-cycle and the building block of every other
// construction. The traversal starts from pts[start]; the paper allows an
// arbitrary start, and the experiments average over random starts.
// It panics if k < 1 or start is out of range.
//
// When the points are metric.Vector and d is metric.Euclidean, the
// traversal dispatches to the flat-buffer squared-distance kernel
// (fastgmm.go), which selects the same points; every other (pts, d)
// combination runs the generic scan below.
func GMM[P any](pts []P, k int, start int, d metric.Distance[P]) Result[P] {
	if k < 1 {
		panic(fmt.Sprintf("coreset: GMM requires k >= 1, got %d", k))
	}
	n := len(pts)
	if n == 0 {
		return Result[P]{}
	}
	if start < 0 || start >= n {
		panic(fmt.Sprintf("coreset: GMM start index %d out of range [0,%d)", start, n))
	}
	if k > n {
		k = n
	}
	if res, ok := gmmFast(pts, k, start, d); ok {
		return res
	}
	return gmmGeneric(pts, k, start, d)
}

// gmmGeneric is the distance-agnostic farthest-first traversal; GMM
// validates and clamps its arguments (1 ≤ k ≤ len(pts), start in range).
func gmmGeneric[P any](pts []P, k int, start int, d metric.Distance[P]) Result[P] {
	n := len(pts)
	res := Result[P]{
		Points:  make([]P, 0, k),
		Indices: make([]int, 0, k),
		Assign:  make([]int, n),
	}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	res.LastDist = math.Inf(1)

	cur := start
	nextDist := math.Inf(-1)
	for sel := 0; sel < k; sel++ {
		if sel > 0 {
			res.LastDist = minDist[cur]
		}
		res.Points = append(res.Points, pts[cur])
		res.Indices = append(res.Indices, cur)
		// Relax distances against the new center; strict '<' keeps ties on
		// the earliest-selected center.
		next := cur
		nextDist = math.Inf(-1)
		for i := 0; i < n; i++ {
			if dist := d(pts[cur], pts[i]); dist < minDist[i] {
				minDist[i] = dist
				res.Assign[i] = sel
			}
			if minDist[i] > nextDist {
				next, nextDist = i, minDist[i]
			}
		}
		cur = next
	}
	// The last relaxation pass already maximized over the fully relaxed
	// min-distances, so its running max IS r_T — no O(n) re-scan needed.
	if nextDist > 0 {
		res.Radius = nextDist
	}
	return res
}

// GMMExt is Algorithm 1 of the paper: it computes a kernel
// T′ = GMM(pts, k′), clusters pts around the kernel (ties toward the
// earlier-selected center), and returns, for each cluster, its center plus
// up to k−1 additional delegate points, in input order. The result is a
// (1+ε)-composable core-set for the four injective-proxy problems
// (Theorem 5). maxDelegates generalizes the per-cluster cap: the
// deterministic algorithm uses k−1, while the randomized MapReduce variant
// of Theorem 7 passes Θ(max{log n, k/ℓ}).
func GMMExt[P any](pts []P, k, kprime, start int, d metric.Distance[P]) []P {
	return GMMExtCapped(pts, k, kprime, k-1, start, d)
}

// GMMExtCapped is GMMExt with an explicit per-cluster delegate cap.
func GMMExtCapped[P any](pts []P, k, kprime, maxDelegates, start int, d metric.Distance[P]) []P {
	if k < 1 || kprime < k {
		panic(fmt.Sprintf("coreset: GMMExt requires 1 <= k <= k', got k=%d k'=%d", k, kprime))
	}
	if maxDelegates < 0 {
		panic(fmt.Sprintf("coreset: GMMExt requires maxDelegates >= 0, got %d", maxDelegates))
	}
	res := GMM(pts, kprime, start, d)
	if len(res.Points) == 0 {
		return nil
	}
	// Emit cluster centers first (kernel order), then delegates in input
	// order, capped per cluster.
	out := make([]P, 0, len(res.Points)*(1+maxDelegates))
	out = append(out, res.Points...)
	taken := make([]int, len(res.Points))
	for i, p := range pts {
		c := res.Assign[i]
		if i == res.Indices[c] {
			continue // the center itself, already emitted
		}
		if taken[c] < maxDelegates {
			taken[c]++
			out = append(out, p)
		}
	}
	return out
}

// GMMGen is the GMM-GEN variant of Section 6.2: instead of materializing
// delegates it returns the kernel points paired with the number of
// delegates each would carry (cluster size capped at k, including the
// center). The result is a composable generalized core-set for the four
// injective-proxy problems (Lemma 8), with size s(T) = min(k′,|pts|) and
// expanded size m(T) ≤ k·k′.
func GMMGen[P any](pts []P, k, kprime, start int, d metric.Distance[P]) Generalized[P] {
	if k < 1 || kprime < k {
		panic(fmt.Sprintf("coreset: GMMGen requires 1 <= k <= k', got k=%d k'=%d", k, kprime))
	}
	res := GMM(pts, kprime, start, d)
	if len(res.Points) == 0 {
		return nil
	}
	sizes := make([]int, len(res.Points))
	for i := range pts {
		sizes[res.Assign[i]]++
	}
	gen := make(Generalized[P], len(res.Points))
	for j, p := range res.Points {
		mult := sizes[j]
		if mult > k {
			mult = k
		}
		gen[j] = Weighted[P]{Point: p, Mult: mult}
	}
	return gen
}
