package coreset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/diversity"
	"divmax/internal/metric"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		pts[i] = v
	}
	return pts
}

// bruteKCenterRadius computes the optimal k-center range r*_k by
// enumerating all k-subsets. Tests only.
func bruteKCenterRadius(pts []metric.Vector, k int) float64 {
	best := math.Inf(1)
	idx := make([]int, k)
	var recur func(pos, next int)
	recur = func(pos, next int) {
		if pos == k {
			centers := make([]metric.Vector, k)
			for i, j := range idx {
				centers[i] = pts[j]
			}
			if r := metric.Range(pts, centers, metric.Euclidean); r < best {
				best = r
			}
			return
		}
		for j := next; j <= len(pts)-(k-pos); j++ {
			idx[pos] = j
			recur(pos+1, j+1)
		}
	}
	recur(0, 0)
	return best
}

// bruteDiversity computes div_k(S) exactly by subset enumeration.
func bruteDiversity(m diversity.Measure, pts []metric.Vector, k int) float64 {
	best := math.Inf(-1)
	idx := make([]int, k)
	var recur func(pos, next int)
	recur = func(pos, next int) {
		if pos == k {
			sel := make([]metric.Vector, k)
			for i, j := range idx {
				sel[i] = pts[j]
			}
			if v, _ := diversity.Evaluate(m, sel, metric.Euclidean); v > best {
				best = v
			}
			return
		}
		for j := next; j <= len(pts)-(k-pos); j++ {
			idx[pos] = j
			recur(pos+1, j+1)
		}
	}
	recur(0, 0)
	return best
}

func TestGMMBasic(t *testing.T) {
	pts := []metric.Vector{{0}, {1}, {2}, {10}}
	res := GMM(pts, 2, 0, metric.Euclidean)
	if len(res.Points) != 2 || res.Indices[0] != 0 {
		t.Fatalf("GMM = %+v", res)
	}
	// Farthest from {0} is {10}.
	if res.Indices[1] != 3 {
		t.Fatalf("second center = index %d, want 3", res.Indices[1])
	}
	if !almostEqual(res.LastDist, 10, 1e-12) {
		t.Fatalf("LastDist = %v, want 10", res.LastDist)
	}
	// Radius: {2} is at distance 2 from {0}.
	if !almostEqual(res.Radius, 2, 1e-12) {
		t.Fatalf("Radius = %v, want 2", res.Radius)
	}
}

func TestGMMDegenerate(t *testing.T) {
	var empty []metric.Vector
	res := GMM(empty, 3, 0, metric.Euclidean)
	if len(res.Points) != 0 {
		t.Fatalf("GMM on empty input returned %d points", len(res.Points))
	}
	// k larger than n clips.
	pts := []metric.Vector{{0}, {5}}
	res = GMM(pts, 10, 0, metric.Euclidean)
	if len(res.Points) != 2 {
		t.Fatalf("GMM with k>n returned %d points, want 2", len(res.Points))
	}
	if res.Radius != 0 {
		t.Fatalf("GMM selecting everything has Radius %v, want 0", res.Radius)
	}
}

func TestGMMPanics(t *testing.T) {
	pts := []metric.Vector{{0}}
	for _, fn := range []func(){
		func() { GMM(pts, 0, 0, metric.Euclidean) },
		func() { GMM(pts, 1, -1, metric.Euclidean) },
		func() { GMM(pts, 1, 5, metric.Euclidean) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGMMDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomVectors(rng, 40, 3)
	a := GMM(pts, 7, 0, metric.Euclidean)
	b := GMM(pts, 7, 0, metric.Euclidean)
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatal("GMM not deterministic")
		}
	}
}

func TestGMMAnticoverProperty(t *testing.T) {
	// r_T ≤ d_k ≤ ρ_T: the radius never exceeds the last selection
	// distance, which never exceeds the kernel's min pairwise distance.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		k := 2 + rng.Intn(5)
		pts := randomVectors(rng, n, 2)
		res := GMM(pts, k, rng.Intn(n), metric.Euclidean)
		rho := metric.Farness(res.Points, metric.Euclidean)
		return res.Radius <= res.LastDist+1e-9 && res.LastDist <= rho+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGMMTwoApproxKCenter(t *testing.T) {
	// Gonzalez guarantee: r_T ≤ 2·r*_k.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(6) // ≤ 11 for the brute force
		k := 2 + rng.Intn(2)
		pts := randomVectors(rng, n, 2)
		res := GMM(pts, k, rng.Intn(n), metric.Euclidean)
		return res.Radius <= 2*bruteKCenterRadius(pts, k)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGMMTwoApproxRemoteEdge(t *testing.T) {
	// The greedy kernel is a 2-approximation for remote-edge:
	// ρ(T) ≥ ρ*_k / 2.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(6)
		k := 2 + rng.Intn(2)
		pts := randomVectors(rng, n, 2)
		res := GMM(pts, k, rng.Intn(n), metric.Euclidean)
		got := metric.Farness(res.Points, metric.Euclidean)
		opt := bruteDiversity(diversity.RemoteEdge, pts, k)
		return got >= opt/2-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGMMCoresetLossBoundRemoteEdge(t *testing.T) {
	// Lemma 1's triangle-inequality core: every point of S is within
	// Radius of the kernel, so div_k(T) ≥ div_k(S) − 2·Radius for
	// remote-edge. Checked against brute force on composed partitions
	// (the composable core-set setting of Lemma 5 with ℓ parts).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(5) // ≤ 12
		k := 2 + rng.Intn(2) // 2..3
		kprime := k + rng.Intn(3)
		pts := randomVectors(rng, n, 2)
		ell := 1 + rng.Intn(3)
		var union []metric.Vector
		maxRadius := 0.0
		for i := 0; i < ell; i++ {
			lo, hi := i*n/ell, (i+1)*n/ell
			if hi-lo == 0 {
				continue
			}
			res := GMM(pts[lo:hi], kprime, 0, metric.Euclidean)
			union = append(union, res.Points...)
			if res.Radius > maxRadius {
				maxRadius = res.Radius
			}
		}
		if len(union) < k {
			return true // degenerate split; nothing to check
		}
		got := bruteDiversity(diversity.RemoteEdge, union, k)
		want := bruteDiversity(diversity.RemoteEdge, pts, k)
		return got >= want-2*maxRadius-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGMMFullKernelIsLossless(t *testing.T) {
	// k' = n: the core-set is the whole input, ratio exactly 1.
	rng := rand.New(rand.NewSource(9))
	pts := randomVectors(rng, 10, 2)
	res := GMM(pts, 10, 0, metric.Euclidean)
	if len(res.Points) != 10 {
		t.Fatalf("kernel size %d, want 10", len(res.Points))
	}
	got := bruteDiversity(diversity.RemoteEdge, res.Points, 3)
	want := bruteDiversity(diversity.RemoteEdge, pts, 3)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("full kernel changed diversity: %v vs %v", got, want)
	}
}

func TestGMMAssignNearestCenter(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		pts := randomVectors(rng, n, 2)
		res := GMM(pts, 4, 0, metric.Euclidean)
		for i := range pts {
			got := res.Assign[i]
			want, _ := metric.MinDistance(pts[i], res.Points, metric.Euclidean)
			if !almostEqual(metric.Euclidean(pts[i], res.Points[got]), want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGMMExtStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomVectors(rng, 60, 2)
	k, kprime := 3, 5
	out := GMMExt(pts, k, kprime, 0, metric.Euclidean)
	if len(out) > k*kprime {
		t.Fatalf("GMMExt size %d exceeds k·k' = %d", len(out), k*kprime)
	}
	if len(out) < kprime {
		t.Fatalf("GMMExt size %d below kernel size %d", len(out), kprime)
	}
	// The kernel points come first.
	kernel := GMM(pts, kprime, 0, metric.Euclidean)
	for i := range kernel.Points {
		if !almostEqual(metric.Euclidean(out[i], kernel.Points[i]), 0, 1e-12) {
			t.Fatalf("GMMExt[%d] is not kernel point %d", i, i)
		}
	}
}

func TestGMMExtDelegateCounts(t *testing.T) {
	// Cluster sizes cap the delegates: per cluster at most k−1 extras.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(4)
		pts := randomVectors(rng, n, 2)
		out := GMMExt(pts, k, kprime, 0, metric.Euclidean)
		res := GMM(pts, kprime, 0, metric.Euclidean)
		// Expected total: Σ_j min(|C_j|, k).
		sizes := make([]int, len(res.Points))
		for i := range pts {
			sizes[res.Assign[i]]++
		}
		want := 0
		for _, s := range sizes {
			if s > k {
				s = k
			}
			want += s
		}
		return len(out) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGMMExtCappedZeroIsKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomVectors(rng, 30, 2)
	out := GMMExtCapped(pts, 3, 4, 0, 0, metric.Euclidean)
	if len(out) != 4 {
		t.Fatalf("cap 0 returned %d points, want kernel size 4", len(out))
	}
}

func TestGMMExtCoresetLossBoundRemoteClique(t *testing.T) {
	// Lemma 2/6: with injective proxies at distance ≤ 2·kernel radius,
	// div_k(T) ≥ div_k(S) − C(k,2)·2·(2·maxRadius) for remote-clique.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(5)
		k := 2 + rng.Intn(2)
		kprime := k + rng.Intn(3)
		pts := randomVectors(rng, n, 2)
		ell := 1 + rng.Intn(2)
		var union []metric.Vector
		maxRadius := 0.0
		for i := 0; i < ell; i++ {
			lo, hi := i*n/ell, (i+1)*n/ell
			if hi-lo == 0 {
				continue
			}
			union = append(union, GMMExt(pts[lo:hi], k, kprime, 0, metric.Euclidean)...)
			res := GMM(pts[lo:hi], kprime, 0, metric.Euclidean)
			if res.Radius > maxRadius {
				maxRadius = res.Radius
			}
		}
		if len(union) < k {
			return true
		}
		got := bruteDiversity(diversity.RemoteClique, union, k)
		want := bruteDiversity(diversity.RemoteClique, pts, k)
		pairs := float64(k * (k - 1) / 2)
		return got >= want-pairs*4*maxRadius-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGMMExtPanics(t *testing.T) {
	pts := []metric.Vector{{0}, {1}}
	for _, fn := range []func(){
		func() { GMMExt(pts, 0, 1, 0, metric.Euclidean) },
		func() { GMMExt(pts, 3, 2, 0, metric.Euclidean) },
		func() { GMMExtCapped(pts, 1, 1, -1, 0, metric.Euclidean) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGMMGenMultiplicities(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(4)
		pts := randomVectors(rng, n, 2)
		gen := GMMGen(pts, k, kprime, 0, metric.Euclidean)
		if gen.Size() != min(kprime, n) {
			return false
		}
		if gen.ExpandedSize() > k*gen.Size() {
			return false
		}
		// Multiplicities match capped cluster sizes.
		res := GMM(pts, kprime, 0, metric.Euclidean)
		sizes := make([]int, len(res.Points))
		for i := range pts {
			sizes[res.Assign[i]]++
		}
		for j, w := range gen {
			want := sizes[j]
			if want > k {
				want = k
			}
			if w.Mult != want {
				return false
			}
		}
		return gen.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGMMGenMatchesGMMExtExpansion(t *testing.T) {
	// m(GMM-GEN) equals |GMM-EXT|: the generalized core-set is the
	// compact encoding of the delegate core-set.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		k := 2 + rng.Intn(3)
		kprime := k + rng.Intn(4)
		pts := randomVectors(rng, n, 2)
		gen := GMMGen(pts, k, kprime, 0, metric.Euclidean)
		ext := GMMExt(pts, k, kprime, 0, metric.Euclidean)
		return gen.ExpandedSize() == len(ext)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGMMGenEmptyInput(t *testing.T) {
	if gen := GMMGen[metric.Vector](nil, 2, 4, 0, metric.Euclidean); gen != nil {
		t.Fatalf("GMMGen(empty) = %v, want nil", gen)
	}
}
