package sequential

import (
	"fmt"
	"math"

	"divmax/internal/metric"
)

// Grouped is a point carrying its partition-matroid class.
type Grouped[P any] struct {
	Point P
	Group int
}

// MaxDispersionPartitionMatroid maximizes remote-clique (sum of pairwise
// distances) over selections of exactly k points containing at most
// limits[g] points of each group g — the partition-matroid–constrained
// diversity maximization the paper cites as an important generalization
// (Abbassi, Mirrokni, Thakur, KDD'13; Cevallos, Eisenbrand, Zenklusen,
// SoCG'16). The algorithm is the KDD'13 approach: a feasible greedy start
// followed by feasibility-preserving 1-swap local search, a
// constant-factor approximation (½ for local search on max-sum
// dispersion under a matroid).
//
// It returns an error when no feasible solution of size k exists
// (Σ min(limits[g], |group g|) < k) or the inputs are malformed.
//
// When the points are metric.Vector, d is metric.Euclidean, and more
// than one core is available, the greedy start and the swap sweeps run
// index-based on the round-2 solve engine (engine.go) — the third
// index-based consumer after MaxDispersionPairs and LocalSearchClique —
// with the sweeps sharded across cores; every distance it consults is
// the square-rooted canonical square, consumed in the generic path's
// order, so the selection is bit-identical to the callback path's.
func MaxDispersionPartitionMatroid[P any](pts []Grouped[P], limits []int, k int, d metric.Distance[P]) ([]P, error) {
	if k < 1 {
		return nil, fmt.Errorf("sequential: matroid dispersion requires k >= 1, got %d", k)
	}
	groupSize := make([]int, len(limits))
	for i, gp := range pts {
		if gp.Group < 0 || gp.Group >= len(limits) {
			return nil, fmt.Errorf("sequential: point %d has group %d outside [0,%d)", i, gp.Group, len(limits))
		}
		groupSize[gp.Group]++
	}
	capacity := 0
	for g, lim := range limits {
		if lim < 0 {
			return nil, fmt.Errorf("sequential: negative limit %d for group %d", lim, g)
		}
		c := lim
		if groupSize[g] < c {
			c = groupSize[g]
		}
		capacity += c
	}
	if capacity < k {
		return nil, fmt.Errorf("sequential: partition matroid admits at most %d points, need k=%d", capacity, k)
	}

	if grouped, ok := any(pts).([]Grouped[metric.Vector]); ok && autoMatrixSolve && metric.IsEuclidean(d) {
		vecs := make([]metric.Vector, len(grouped))
		group := make([]int, len(grouped))
		for i, gp := range grouped {
			vecs[i] = gp.Point
			group[i] = gp.Group
		}
		if e := buildEngineVectors(vecs, 0); e != nil {
			sol := maxDispersionMatroidEngine(e, group, limits, k)
			result := make([]P, len(sol))
			for i, j := range sol {
				result[i] = pts[j].Point
			}
			return result, nil
		}
	}

	n := len(pts)
	dist := func(i, j int) float64 { return d(pts[i].Point, pts[j].Point) }

	// Greedy feasible start: farthest-first among points whose group has
	// spare capacity (a matroid-respecting GMM sweep).
	inSol := make([]bool, n)
	used := make([]int, len(limits))
	sol := make([]int, 0, k)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for len(sol) < k {
		best := -1
		for i := 0; i < n; i++ {
			if inSol[i] || used[pts[i].Group] >= limits[pts[i].Group] {
				continue
			}
			if best == -1 || minDist[i] > minDist[best] {
				best = i
			}
		}
		if best == -1 {
			break // cannot happen: capacity checked above
		}
		inSol[best] = true
		used[pts[best].Group]++
		sol = append(sol, best)
		for i := 0; i < n; i++ {
			if dd := dist(best, i); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}

	// contrib[i] = Σ_{j∈sol} d(i,j).
	contrib := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, j := range sol {
			contrib[i] += dist(i, j)
		}
	}
	// Local search: swap sol[si] for an outside point j when the sum
	// improves and the partition matroid stays satisfied (same group, or
	// j's group has spare capacity once sol[si] leaves).
	const maxSweeps = 500
	for sweep := 0; sweep < maxSweeps; sweep++ {
		bestDelta, bestSi, bestJ := 1e-12, -1, -1
		for si, i := range sol {
			gi := pts[i].Group
			for j := 0; j < n; j++ {
				if inSol[j] {
					continue
				}
				gj := pts[j].Group
				if gj != gi && used[gj] >= limits[gj] {
					continue
				}
				delta := contrib[j] - dist(i, j) - contrib[i]
				if delta > bestDelta {
					bestDelta, bestSi, bestJ = delta, si, j
				}
			}
		}
		if bestSi < 0 {
			break
		}
		out := sol[bestSi]
		inSol[out] = false
		used[pts[out].Group]--
		inSol[bestJ] = true
		used[pts[bestJ].Group]++
		sol[bestSi] = bestJ
		for i := 0; i < n; i++ {
			contrib[i] += dist(i, bestJ) - dist(i, out)
		}
	}

	result := make([]P, len(sol))
	for i, j := range sol {
		result[i] = pts[j].Point
	}
	return result, nil
}

// maxDispersionMatroidEngine is the KDD'13 greedy-start + 1-swap local
// search run index-based on the solve engine. The greedy relaxation
// reads one row per selected point (computed on demand in tiled mode
// and kept as that slot's solution row), contribution sums read the
// solution rows through matrix symmetry in the generic path's order,
// and each swap sweep shards the candidate axis across the engine's
// workers with the lowest-(slot, candidate) tie-break of reduceSwaps —
// so every greedy pick and every applied exchange matches the callback
// path bit for bit, for every worker count and both engine modes.
// Feasibility (the capacity check) is the caller's responsibility.
func maxDispersionMatroidEngine(e *Engine, group, limits []int, k int) []int {
	n := e.n
	inSol := make([]bool, n)
	used := make([]int, len(limits))
	sol := make([]int, 0, k)
	solRows := newSolRowSet(e, k)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	chunkRanges := shardRanges(n, e.workers, minChunkRows)
	// Greedy feasible start: farthest-first among points whose group has
	// spare capacity. The selection scan is the generic path's (strict
	// '>' over an ascending scan keeps the lowest index); the relaxation
	// shards by row ranges with disjoint writes.
	for len(sol) < k {
		best := -1
		for i := 0; i < n; i++ {
			if inSol[i] || used[group[i]] >= limits[group[i]] {
				continue
			}
			if best == -1 || minDist[i] > minDist[best] {
				best = i
			}
		}
		if best == -1 {
			break // cannot happen: capacity checked by the caller
		}
		inSol[best] = true
		used[group[best]]++
		solRows.load(len(sol), best)
		row := solRows.row(len(sol))
		sol = append(sol, best)
		runShards(chunkRanges, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if dd := math.Sqrt(row[i]); dd < minDist[i] {
					minDist[i] = dd
				}
			}
		})
	}

	// contrib[i] = Σ_{j∈sol} d(i,j), accumulated in sol order through
	// the symmetric entries of the solution rows.
	contrib := make([]float64, n)
	runShards(chunkRanges, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for si := range sol {
				sum += math.Sqrt(solRows.row(si)[i])
			}
			contrib[i] = sum
		}
	})

	// Local search: swap sol[si] for an outside point j when the sum
	// improves and the partition matroid stays satisfied (same group, or
	// j's group has spare capacity once sol[si] leaves).
	const maxSweeps = 500
	sweepRanges := shardRanges(n, e.workers, minSweepCols)
	shardBest := make([]swapChoice, len(sweepRanges))
	newRowBuf := e.rowScratch()
	for sweep := 0; sweep < maxSweeps; sweep++ {
		runShards(sweepRanges, func(s, lo, hi int) {
			loc := swapChoice{delta: swapThreshold, si: -1, j: -1}
			for si, i := range sol {
				gi := group[i]
				row := solRows.row(si)
				ci := contrib[i]
				for j := lo; j < hi; j++ {
					if inSol[j] {
						continue
					}
					gj := group[j]
					if gj != gi && used[gj] >= limits[gj] {
						continue
					}
					if delta := contrib[j] - math.Sqrt(row[j]) - ci; delta > loc.delta {
						loc = swapChoice{delta: delta, si: si, j: j}
					}
				}
			}
			shardBest[s] = loc
		})
		choice := reduceSwaps(shardBest)
		if choice.si < 0 {
			break
		}
		out := sol[choice.si]
		inSol[out] = false
		used[group[out]]--
		inSol[choice.j] = true
		used[group[choice.j]]++
		sol[choice.si] = choice.j
		oldRow := solRows.row(choice.si)
		var newRow []float64
		if e.dm != nil {
			newRow = e.dm.SqRow(choice.j)
		} else {
			e.flat.FillSqRows(choice.j, choice.j+1, newRowBuf, 1)
			newRow = newRowBuf[:n]
		}
		runShards(chunkRanges, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				contrib[i] += math.Sqrt(newRow[i]) - math.Sqrt(oldRow[i])
			}
		})
		if e.dm != nil {
			solRows.rows[choice.si] = newRow
		} else {
			copy(oldRow, newRow) // refresh the slot in place
		}
	}
	return sol
}
