package sequential

import (
	"fmt"
	"math"

	"divmax/internal/metric"
)

// Grouped is a point carrying its partition-matroid class.
type Grouped[P any] struct {
	Point P
	Group int
}

// MaxDispersionPartitionMatroid maximizes remote-clique (sum of pairwise
// distances) over selections of exactly k points containing at most
// limits[g] points of each group g — the partition-matroid–constrained
// diversity maximization the paper cites as an important generalization
// (Abbassi, Mirrokni, Thakur, KDD'13; Cevallos, Eisenbrand, Zenklusen,
// SoCG'16). The algorithm is the KDD'13 approach: a feasible greedy start
// followed by feasibility-preserving 1-swap local search, a
// constant-factor approximation (½ for local search on max-sum
// dispersion under a matroid).
//
// It returns an error when no feasible solution of size k exists
// (Σ min(limits[g], |group g|) < k) or the inputs are malformed.
func MaxDispersionPartitionMatroid[P any](pts []Grouped[P], limits []int, k int, d metric.Distance[P]) ([]P, error) {
	if k < 1 {
		return nil, fmt.Errorf("sequential: matroid dispersion requires k >= 1, got %d", k)
	}
	groupSize := make([]int, len(limits))
	for i, gp := range pts {
		if gp.Group < 0 || gp.Group >= len(limits) {
			return nil, fmt.Errorf("sequential: point %d has group %d outside [0,%d)", i, gp.Group, len(limits))
		}
		groupSize[gp.Group]++
	}
	capacity := 0
	for g, lim := range limits {
		if lim < 0 {
			return nil, fmt.Errorf("sequential: negative limit %d for group %d", lim, g)
		}
		c := lim
		if groupSize[g] < c {
			c = groupSize[g]
		}
		capacity += c
	}
	if capacity < k {
		return nil, fmt.Errorf("sequential: partition matroid admits at most %d points, need k=%d", capacity, k)
	}

	n := len(pts)
	dist := func(i, j int) float64 { return d(pts[i].Point, pts[j].Point) }

	// Greedy feasible start: farthest-first among points whose group has
	// spare capacity (a matroid-respecting GMM sweep).
	inSol := make([]bool, n)
	used := make([]int, len(limits))
	sol := make([]int, 0, k)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for len(sol) < k {
		best := -1
		for i := 0; i < n; i++ {
			if inSol[i] || used[pts[i].Group] >= limits[pts[i].Group] {
				continue
			}
			if best == -1 || minDist[i] > minDist[best] {
				best = i
			}
		}
		if best == -1 {
			break // cannot happen: capacity checked above
		}
		inSol[best] = true
		used[pts[best].Group]++
		sol = append(sol, best)
		for i := 0; i < n; i++ {
			if dd := dist(best, i); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}

	// contrib[i] = Σ_{j∈sol} d(i,j).
	contrib := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, j := range sol {
			contrib[i] += dist(i, j)
		}
	}
	// Local search: swap sol[si] for an outside point j when the sum
	// improves and the partition matroid stays satisfied (same group, or
	// j's group has spare capacity once sol[si] leaves).
	const maxSweeps = 500
	for sweep := 0; sweep < maxSweeps; sweep++ {
		bestDelta, bestSi, bestJ := 1e-12, -1, -1
		for si, i := range sol {
			gi := pts[i].Group
			for j := 0; j < n; j++ {
				if inSol[j] {
					continue
				}
				gj := pts[j].Group
				if gj != gi && used[gj] >= limits[gj] {
					continue
				}
				delta := contrib[j] - dist(i, j) - contrib[i]
				if delta > bestDelta {
					bestDelta, bestSi, bestJ = delta, si, j
				}
			}
		}
		if bestSi < 0 {
			break
		}
		out := sol[bestSi]
		inSol[out] = false
		used[pts[out].Group]--
		inSol[bestJ] = true
		used[pts[bestJ].Group]++
		sol[bestSi] = bestJ
		for i := 0; i < n; i++ {
			contrib[i] += dist(i, bestJ) - dist(i, out)
		}
	}

	result := make([]P, len(sol))
	for i, j := range sol {
		result[i] = pts[j].Point
	}
	return result, nil
}
