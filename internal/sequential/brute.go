package sequential

import (
	"fmt"
	"math"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// BruteForce computes an exactly optimal size-k solution by enumerating
// all C(n,k) subsets. It is exponential and exists for tests, reference
// values on small instances, and the exact columns of EXPERIMENTS.md.
// For remote-cycle and remote-bipartition the inner evaluation itself is
// exact only within the limits of internal/graph; the returned flag
// reports whether every evaluation was exact.
func BruteForce[P any](m diversity.Measure, pts []P, k int, d metric.Distance[P]) ([]P, float64, bool) {
	if k < 1 {
		panic(fmt.Sprintf("sequential: BruteForce requires k >= 1, got %d", k))
	}
	n := len(pts)
	if k > n {
		k = n
	}
	if k == 0 {
		return nil, 0, true
	}
	best := math.Inf(-1)
	bestSel := make([]int, k)
	exact := true
	idx := make([]int, k)
	buf := make([]P, k)
	var recur func(pos, next int)
	recur = func(pos, next int) {
		if pos == k {
			for i, j := range idx {
				buf[i] = pts[j]
			}
			v, ex := diversity.Evaluate(m, buf, d)
			if !ex {
				exact = false
			}
			if v > best {
				best = v
				copy(bestSel, idx)
			}
			return
		}
		for j := next; j <= n-(k-pos); j++ {
			idx[pos] = j
			recur(pos+1, j+1)
		}
	}
	recur(0, 0)
	out := make([]P, k)
	for i, j := range bestSel {
		out[i] = pts[j]
	}
	return out, best, exact
}

// BruteForceGeneralized computes the exact generalized k-diversity
// gen-div_k(T) = max over coherent subsets T̂ ⊑ T with m(T̂) = k
// (Section 6), by enumerating multiplicity vectors. Tests only.
func BruteForceGeneralized[P any](m diversity.Measure, g coreset.Generalized[P], k int, d metric.Distance[P]) float64 {
	if k < 1 {
		panic(fmt.Sprintf("sequential: BruteForceGeneralized requires k >= 1, got %d", k))
	}
	if g.ExpandedSize() < k {
		k = g.ExpandedSize()
	}
	pts, _ := g.Split()
	best := math.Inf(-1)
	mult := make([]int, g.Size())
	var recur func(pos, left int)
	recur = func(pos, left int) {
		if pos == g.Size() {
			if left != 0 {
				return
			}
			var selPts []P
			var selMult []int
			for i, mu := range mult {
				if mu > 0 {
					selPts = append(selPts, pts[i])
					selMult = append(selMult, mu)
				}
			}
			if len(selPts) == 0 {
				return
			}
			v, _ := diversity.EvaluateWeighted(m, selPts, selMult, d)
			if v > best {
				best = v
			}
			return
		}
		maxTake := g[pos].Mult
		if maxTake > left {
			maxTake = left
		}
		for take := 0; take <= maxTake; take++ {
			mult[pos] = take
			recur(pos+1, left-take)
		}
		mult[pos] = 0
	}
	recur(0, k)
	return best
}
