//go:build !race

package sequential

// raceEnabled lets tests scale their input sizes down under the race
// detector, whose instrumentation slows the O(n²) scans ~10×.
const raceEnabled = false
