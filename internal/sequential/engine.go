package sequential

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// Parallel, tiled round-2 solve engine.
//
// The Ω(n²) scans of the round-2 solvers — MaxDispersionPairs'
// farthest-partner pass, LocalSearchClique's (and the matroid solver's)
// swap sweeps — shard across worker goroutines here, with reductions
// that keep every selection bit-identical to the sequential scans:
//
//   - The farthest-partner pass shards, in both modes, by column
//     ranges of the triangular pair walk — each worker owns the pairs
//     whose larger index falls in its range, accumulates per-shard
//     partial (farDist, farIdx) arrays, and the partials merge in shard
//     order with strict '>': concatenating the shards' candidate
//     subsequences in range order reproduces the sequential ascending
//     candidate order, so the merge keeps exactly the partner the
//     sequential scan keeps, at the sequential pass's n²/2 total work.
//     Matrix mode reads the materialized rows; tiled mode computes
//     exactly the walked entries on demand through column-range fills
//     (metric.Points.FillSqRowsRange) — n²/2 kernel evaluations, half
//     of what the pre-PR-5 full-row tiled fills cost — on values
//     bit-identical by matrix symmetry ((a−b)² = (b−a)² in IEEE
//     arithmetic). Same comparisons, same strict '>', same result.
//   - The swap sweeps shard by candidate (column) ranges; each shard
//     reports its best improvement in the sequential scan order, and
//     the shard winners reduce by strictly-larger delta with exact ties
//     going to the lexicographically smallest (slot, candidate) — the
//     swap the sequential (slot outer, candidate inner, strict '>')
//     scan would have applied. The applied exchange, and therefore the
//     whole trajectory, is independent of the worker count.
//
// The engine runs in one of two modes, selected by MatrixBudget:
//
//   - matrix mode (8·n² ≤ MatrixBudget): the pairwise squared-distance
//     matrix is materialized once — rows filled in parallel — and the
//     scans read rows of it;
//   - tiled mode (beyond the budget): no n² buffer exists. The
//     farthest-partner pass streams row-blocks through worker-private
//     tiles (metric.Points.FillSqRows), and the passes that revisit a
//     few rows — recomputes, swap sweeps, contribution updates — compute
//     those rows on demand into O(k·n) scratch. Entries are the same
//     per-pair kernel values either way (canonical four-lane squares
//     below metric.BlockedMinDim, position-independent blocked-tier
//     values at and above it), so tiled solves select bit-identically
//     to matrix solves. Below the blocked threshold those entries are
//     also bit-identical to the generic callback path (matrix.go); at
//     and above it the values agree within the documented envelope and
//     the SELECTIONS stay identical — pinned by the envelope harness in
//     internal/metric.
//
// Before the engine, AutoMatrix refused to build past 4096 points and
// large unions silently fell back to the per-pair callback path; now
// the cap is a memory budget, and unions past it stay on the fast
// kernels through tiled mode.

// MatrixBudget is the memory budget, in bytes, for automatically
// materialized full distance matrices: a point set with 8·n² above it
// solves in tiled mode (streamed row-blocks, no n² buffer) instead.
// The default keeps the full-matrix threshold at 4096 points — the
// pre-engine cap — while callers with a known budget can raise it.
var MatrixBudget int64 = 128 << 20

// tileBudgetBytes bounds each worker's private row-block tile in tiled
// scans; a var so tests can force tiny tiles (multi-block streaming) on
// small inputs.
var tileBudgetBytes int64 = 4 << 20

// Shard minima: a scan is only sharded when every worker gets at least
// this much of it, so goroutine overhead cannot dominate small inputs.
// Vars so tests can force multi-shard scans on small inputs.
var (
	// minScanRows is for the O(n²) farthest-partner pass (each row costs
	// a full n-entry scan).
	minScanRows = 16
	// minSweepCols is for the O(k·n) swap sweeps (each column costs a
	// k-entry scan).
	minSweepCols = 1024
	// minChunkRows is for the O(n) contribution init/update passes.
	minChunkRows = 2048
)

// Engine is a prepared round-2 solve: the flat point store plus either
// a materialized distance matrix or the tiling parameters to stream one.
// It is immutable after construction — solver scratch is per call — so
// one Engine may serve concurrent solves (the divmaxd query cache holds
// one per merged state). Fork + Append extend an engine incrementally
// without touching the original's view (the cache's delta-patch path).
type Engine struct {
	n  int
	dm *metric.DistMatrix // full matrix; nil in tiled mode
	// flat backs tiled mode's streamed fills and on-demand rows, and is
	// the coordinate source for incremental Appends in both modes. At
	// n·d values it is negligible next to the 8·n² matrix it feeds.
	flat    metric.Points
	workers int
}

// BuildEngine prepares the solve engine for pts when the
// Euclidean-over-Vector fast path applies — d is metric.Euclidean, the
// points are []metric.Vector of uniform dimension, and n ≥ 2 — choosing
// matrix or tiled mode by MatrixBudget. workers bounds the goroutines
// of the fill and of every sharded scan (≤ 0 means runtime.NumCPU()).
// It returns nil when the fast path does not apply, in which case
// callers run the generic solvers.
func BuildEngine[P any](pts []P, d metric.Distance[P], workers int) *Engine {
	if len(pts) < 2 || !metric.IsEuclidean(d) {
		return nil
	}
	vecs, ok := any(pts).([]metric.Vector)
	if !ok {
		return nil
	}
	return buildEngineVectors(vecs, workers)
}

// buildEngineVectors is BuildEngine after the distance and point-type
// checks (the matroid solver reaches it from []Grouped[metric.Vector]).
func buildEngineVectors(vecs []metric.Vector, workers int) *Engine {
	if len(vecs) < 2 {
		return nil
	}
	var flat metric.Points
	if !flat.Fill(vecs) {
		return nil // ragged rows: the generic path surfaces the panic
	}
	e := &Engine{n: flat.Len(), flat: flat, workers: resolveWorkers(workers)}
	if int64(e.n)*int64(e.n)*8 <= MatrixBudget {
		e.dm = metric.NewDistMatrix(&e.flat, workers)
	}
	return e
}

// Fork returns a copy of the engine that may be Appended without
// affecting solves running concurrently on e: the copy shares e's
// immutable prefix (matrix cells and flat rows below e.Len()), and an
// Append on it only ever writes memory outside that prefix or freshly
// allocated buffers. Forks chain — fork the result to append again —
// but because chained forks reuse one buffer's spare capacity, only the
// latest engine of a chain may be extended (the divmaxd cache
// serializes its patches exactly this way).
func (e *Engine) Fork() *Engine {
	c := *e
	return &c
}

// Append extends the engine with vecs, as if BuildEngine had been
// called on the concatenated point set: the flat store grows in place,
// and in matrix mode the retained matrix gains the new rows (canonical
// kernel fills) plus the old×new column stripe (copied through matrix
// symmetry) via capacity-doubling DistMatrix.Grown — so every cell, and
// therefore every solve, is bit-identical to a from-scratch build over
// all the points. An append that pushes 8·n² past MatrixBudget drops
// the matrix and crosses into tiled mode, exactly where BuildEngine
// would have started tiled. It reports false — leaving the engine
// unchanged — when the engine has no flat store to grow (built by
// SolveMatrix's explicit-matrix entry points) or a row's dimension
// disagrees with the store's; callers then rebuild from scratch.
func (e *Engine) Append(vecs []metric.Vector) bool {
	if len(vecs) == 0 {
		return true
	}
	if e.flat.Len() != e.n || e.flat.Dim() == 0 {
		return false
	}
	for _, v := range vecs {
		if len(v) != e.flat.Dim() {
			return false
		}
	}
	for _, v := range vecs {
		e.flat.Append(v)
	}
	e.n = e.flat.Len()
	if e.dm != nil {
		if int64(e.n)*int64(e.n)*8 <= MatrixBudget {
			e.dm = e.dm.Grown(&e.flat, maxBudgetPoints(), e.workers)
		} else {
			e.dm = nil
		}
	}
	return true
}

// AppendEngine is Append behind the same point-type gate as
// BuildEngine: it extends e with pts when they are []metric.Vector of
// the engine's dimension, reporting false (engine unchanged) otherwise.
func AppendEngine[P any](e *Engine, pts []P) bool {
	if e == nil {
		return false
	}
	if len(pts) == 0 {
		return true
	}
	vecs, ok := any(pts).([]metric.Vector)
	if !ok {
		return false
	}
	return e.Append(vecs)
}

// AutoEngine is BuildEngine behind the autoMatrixSolve gate: it builds
// only when a one-shot engine solve is expected to beat the callback
// path (see the gate's rationale in matrix.go). It is the entry point
// of the solvers' internal dispatch and of mrdiv.SolveCoresets; callers
// that amortize the build across several solves (the divmaxd query
// cache) use BuildEngine directly.
func AutoEngine[P any](pts []P, d metric.Distance[P], workers int) *Engine {
	if !autoMatrixSolve {
		return nil
	}
	return BuildEngine(pts, d, workers)
}

// engineFromMatrix wraps a prebuilt matrix for the explicit-matrix
// entry points (SolveMatrix and friends). Matrix mode only: with the
// matrix in hand there is nothing to tile.
func engineFromMatrix(dm *metric.DistMatrix, workers int) *Engine {
	return &Engine{n: dm.Len(), dm: dm, workers: resolveWorkers(workers)}
}

// Len returns the number of points the engine was built over.
func (e *Engine) Len() int { return e.n }

// Tiled reports whether the engine streams row-blocks instead of
// holding a materialized matrix.
func (e *Engine) Tiled() bool { return e.dm == nil }

// Matrix returns the materialized distance matrix, nil in tiled mode.
func (e *Engine) Matrix() *metric.DistMatrix { return e.dm }

// MatrixBytes returns the size of the retained matrix buffer
// (monitoring); 0 in tiled mode, where solves use O(k·n) scratch.
func (e *Engine) MatrixBytes() int64 {
	if e.dm == nil {
		return 0
	}
	return e.dm.Bytes()
}

// Workers returns the resolved worker count the engine's scans use.
func (e *Engine) Workers() int { return e.workers }

// WithWorkers returns a copy of the engine whose scans use the given
// worker bound (≤ 0 means runtime.NumCPU()), sharing the underlying
// matrix or flat store — so a worker sweep (cmd/bench) pays one fill,
// not one per count. The copy is as immutable and concurrency-safe as
// the original, and selections are bit-identical for every value.
func (e *Engine) WithWorkers(workers int) *Engine {
	c := *e
	c.workers = resolveWorkers(workers)
	return &c
}

func resolveWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.NumCPU()
}

// shardRanges splits [0, n) into at most workers contiguous ranges of
// at least minSpan elements each.
func shardRanges(n, workers, minSpan int) [][2]int {
	if n <= 0 {
		return nil
	}
	if minSpan < 1 {
		minSpan = 1
	}
	if maxw := (n + minSpan - 1) / minSpan; workers > maxw {
		workers = maxw
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	out := make([][2]int, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// runShards invokes fn once per range, concurrently when there is more
// than one. fn(s, lo, hi) owns range s = [lo, hi).
func runShards(ranges [][2]int, fn func(s, lo, hi int)) {
	if len(ranges) == 1 {
		fn(0, ranges[0][0], ranges[0][1])
		return
	}
	var wg sync.WaitGroup
	for s, r := range ranges {
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, r[0], r[1])
	}
	wg.Wait()
}

// rowScratch returns a buffer for on-demand rows (nil in matrix mode,
// where rows are views).
func (e *Engine) rowScratch() []float64 {
	if e.dm != nil {
		return nil
	}
	return make([]float64, e.n)
}

// sqRowInto returns row i of the squared-distance matrix: a view into
// the materialized matrix, or — in tiled mode — the row computed into
// buf (which must hold n values).
func (e *Engine) sqRowInto(i int, buf []float64) []float64 {
	if e.dm != nil {
		return e.dm.SqRow(i)
	}
	e.flat.FillSqRows(i, i+1, buf, 1)
	return buf[:e.n]
}

// farthestPartners runs the Ω(n²) farthest-partner pass: on return,
// farDist[i]/farIdx[i] hold the distance to and index of the point
// farthest from i (ties on the lowest index), exactly as the sequential
// triangular pass of MaxDispersionPairs computes them. Both modes walk
// the triangular pair set — n²/2 kernel evaluations in tiled mode too,
// streamed through FillSqRowsRange column tiles instead of the full
// rows the pre-PR-5 tiled pass computed — sharded by column ranges of
// the walk with per-shard partials merged in shard order (see
// farthestTriangularShard for the order argument). Callers initialize
// farDist to −Inf and farIdx to −1.
func (e *Engine) farthestPartners(farDist []float64, farIdx []int) {
	n := e.n
	// Clamp so each shard owns on average at least minScanRows rows'
	// worth of pairs.
	workers := e.workers
	if maxw := max(1, (n-1)/(2*minScanRows)); workers > maxw {
		workers = maxw
	}
	if workers <= 1 {
		// One worker: the triangular pass over the whole pair set,
		// exactly as the generic scan runs it.
		e.farthestTriangularShard(0, n, farDist, farIdx)
		return
	}
	e.farthestPartnersTriangular(workers, farDist, farIdx)
}

// triangularBounds splits the columns of the triangular pair walk into
// workers ranges of roughly equal pair count: range s is
// [bounds[s], bounds[s+1]), and the pairs whose larger index lands in
// it number ≈ n(n−1)/2w, which is what balances the shards (column j
// owns j pairs, so uniform column ranges would be hopelessly skewed).
func triangularBounds(n, workers int) []int {
	bounds := make([]int, workers+1)
	for s := 1; s < workers; s++ {
		b := int(math.Round(float64(n) * math.Sqrt(float64(s)/float64(workers))))
		if b < bounds[s-1] {
			b = bounds[s-1]
		}
		if b > n {
			b = n
		}
		bounds[s] = b
	}
	bounds[workers] = n
	return bounds
}

// farthestPartnersTriangular is the column-sharded triangular pass:
// worker s walks the pairs (i, j) with i < j and j in its column range
// [lo, hi), updating both endpoints in a private (farDist, farIdx)
// partial — the same pair walk, same values, same strict '>' as the
// sequential pass, restricted to its pair subset — and the partials
// merge in shard order. The merge is exact: for any row r, the
// candidates a shard feeds to r's entry arrive in ascending order
// (pairs (i, r) during iterations i < r, then (r, j) at iteration r),
// shards earlier in column order hold candidates that all precede later
// shards' (r's own shard also holds the [0, r) prefix, which precedes
// everything), and a strict '>' merge in shard order therefore keeps
// the first maximum of the concatenated — i.e. the sequential ascending
// — candidate sequence. Total pair work equals the sequential pass's
// n²/2; only the O(w·n) merge is added.
func (e *Engine) farthestPartnersTriangular(workers int, farDist []float64, farIdx []int) {
	n := e.n
	bounds := triangularBounds(n, workers)
	partDist := make([]float64, workers*n)
	partIdx := make([]int, workers*n)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fd := partDist[s*n : s*n+n]
			fi := partIdx[s*n : s*n+n]
			for i := range fd {
				fd[i] = math.Inf(-1)
				fi[i] = -1
			}
			e.farthestTriangularShard(bounds[s], bounds[s+1], fd, fi)
		}(s)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		for s := 0; s < workers; s++ {
			if idx := partIdx[s*n+i]; idx >= 0 && partDist[s*n+i] > farDist[i] {
				farDist[i], farIdx[i] = partDist[s*n+i], idx
			}
		}
	}
}

// farthestTriangularShard walks the pairs (i, j) with i < j and j in
// the column range [lo, hi), in the sequential order — i ascending,
// j ascending within each i, both endpoints updated with strict '>' —
// accumulating into fd/fi (the caller's partial, pre-initialized to
// −Inf/−1). Matrix mode reads the materialized rows. Tiled mode
// computes exactly the walked entries on demand — the rectangular
// [0, lo)×[lo, hi) block streamed through a private column tile, then
// the diagonal block row by row from each row's i+1 offset — via
// FillSqRowsRange, so the pass totals n²/2 kernel evaluations across
// shards, half of what full-row fills cost. The entries are the same
// canonical squares either way, consumed in the same order, so matrix
// and tiled shards produce bit-identical partials.
// Within one outer row i, entry i is only ever updated as the pair's
// smaller endpoint (every inner j is strictly greater), so each branch
// below keeps row i's running (best, idx) in locals and writes it back
// once per row — the same comparisons against the same values, without
// a bounds-checked fd[i] access per pair.
func (e *Engine) farthestTriangularShard(lo, hi int, fd []float64, fi []int) {
	if e.dm != nil {
		for i := 0; i < hi; i++ {
			row := e.dm.SqRow(i)
			best, bi := fd[i], fi[i]
			for j := max(lo, i+1); j < hi; j++ {
				dist := math.Sqrt(row[j])
				if dist > best {
					best, bi = dist, j
				}
				if dist > fd[j] {
					fd[j], fi[j] = dist, i
				}
			}
			fd[i], fi[i] = best, bi
		}
		return
	}
	w := hi - lo
	if w <= 0 {
		return
	}
	// Rectangular block: rows [0, lo) need columns [lo, hi), streamed
	// through a tile within the per-worker budget.
	if lo > 0 {
		rows := int(tileBudgetBytes / (8 * int64(w)))
		if rows < 1 {
			rows = 1
		}
		if rows > lo {
			rows = lo
		}
		tile := make([]float64, rows*w)
		for b0 := 0; b0 < lo; b0 += rows {
			b1 := min(b0+rows, lo)
			e.flat.FillSqRowsRange(b0, b1, lo, hi, tile, 1)
			for i := b0; i < b1; i++ {
				seg := tile[(i-b0)*w : (i-b0)*w+w]
				best, bi := fd[i], fi[i]
				for jj, sq := range seg {
					j := lo + jj
					dist := math.Sqrt(sq)
					if dist > best {
						best, bi = dist, j
					}
					if dist > fd[j] {
						fd[j], fi[j] = dist, i
					}
				}
				fd[i], fi[i] = best, bi
			}
		}
	}
	// Diagonal block: row i in [lo, hi) needs columns [i+1, hi) — the
	// triangular tail, filled per row from its own offset.
	buf := make([]float64, w)
	for i := lo; i < hi-1; i++ {
		jlo := i + 1
		seg := buf[:hi-jlo]
		e.flat.FillSqRowsRange(i, i+1, jlo, hi, seg, 1)
		best, bi := fd[i], fi[i]
		for jj, sq := range seg {
			j := jlo + jj
			dist := math.Sqrt(sq)
			if dist > best {
				best, bi = dist, j
			}
			if dist > fd[j] {
				fd[j], fi[j] = dist, i
			}
		}
		fd[i], fi[i] = best, bi
	}
}

// swapThreshold is the minimum improvement a 1-swap must bring to be
// applied — shared by every local-search sweep, sharded or not, so the
// stopping condition is identical across paths.
const swapThreshold = 1e-12

// swapChoice is one shard's best improving swap: replace solution slot
// si with candidate j for a gain of delta. si < 0 means none found.
type swapChoice struct {
	delta float64
	si, j int
}

// reduceSwaps merges per-shard sweep winners: strictly larger delta
// wins; exact ties go to the lexicographically smallest (si, j) — the
// swap the sequential (slot outer, candidate inner, strict '>') scan
// would have kept, since shards partition the candidate axis. The
// result is therefore independent of the shard count.
func reduceSwaps(best []swapChoice) swapChoice {
	out := swapChoice{delta: swapThreshold, si: -1, j: -1}
	for _, c := range best {
		if c.si < 0 {
			continue
		}
		if c.delta > out.delta ||
			(c.delta == out.delta && out.si >= 0 && (c.si < out.si || (c.si == out.si && c.j < out.j))) {
			out = c
		}
	}
	return out
}

// solRowSet maintains the squared-distance rows of the current solution
// members — views into the matrix in matrix mode, an O(k·n) scratch
// buffer refreshed on swaps in tiled mode. It is what lets the swap
// sweeps run without the full matrix.
type solRowSet struct {
	e    *Engine
	rows [][]float64
	buf  []float64 // backing store in tiled mode
}

func newSolRowSet(e *Engine, k int) *solRowSet {
	s := &solRowSet{e: e, rows: make([][]float64, k)}
	if e.dm == nil {
		s.buf = make([]float64, k*e.n)
	}
	return s
}

// load (re)computes slot si's row for point idx.
func (s *solRowSet) load(si, idx int) {
	if s.e.dm != nil {
		s.rows[si] = s.e.dm.SqRow(idx)
		return
	}
	dst := s.buf[si*s.e.n : si*s.e.n+s.e.n]
	s.e.flat.FillSqRows(idx, idx+1, dst, 1)
	s.rows[si] = dst
}

// row returns slot si's row.
func (s *solRowSet) row(si int) []float64 { return s.rows[si] }

// loadPrefix fills slots [0, k) with rows 0..k−1 — the contiguous
// lexicographic start of the local search — as one sharded range fill
// in tiled mode (identical values to k single-row loads, computed
// across the engine's workers instead of serially).
func (s *solRowSet) loadPrefix(k int) {
	if s.e.dm != nil {
		for si := 0; si < k; si++ {
			s.rows[si] = s.e.dm.SqRow(si)
		}
		return
	}
	n := s.e.n
	s.e.flat.FillSqRows(0, k, s.buf[:k*n], s.e.workers)
	for si := 0; si < k; si++ {
		s.rows[si] = s.buf[si*n : si*n+n]
	}
}

// gmmEngine is the farthest-first traversal of Solve's GMM branch on
// engine rows (one row per selected center — O(k) rows total, so tiled
// mode computes them on demand). It compares raw squares with the flat
// GMM kernel's bookkeeping (strict '<' keeps ties on the earliest
// center, strict '>' on an ascending scan keeps the lowest index), so
// it selects exactly the points coreset.GMM's fast path selects. Starts
// from index 0, as Solve does.
func gmmEngine(e *Engine, k int) []int {
	n := e.n
	if k > n {
		k = n
	}
	minSq := make([]float64, n)
	for i := range minSq {
		minSq[i] = math.Inf(1)
	}
	out := make([]int, 0, k)
	buf := e.rowScratch()
	cur := 0
	for sel := 0; sel < k; sel++ {
		out = append(out, cur)
		row := e.sqRowInto(cur, buf)
		next, nextSq := cur, math.Inf(-1)
		for i := 0; i < n; i++ {
			m := minSq[i]
			if sq := row[i]; sq < m {
				m = sq
				minSq[i] = sq
			}
			if m > nextSq {
				next, nextSq = i, m
			}
		}
		cur = next
	}
	return out
}

// maxDispersionPairsEngine is MaxDispersionPairs run index-based on the
// engine: the farthest-partner pass shards across workers (streaming
// row-blocks in tiled mode), the pair-taking loop and its on-demand
// recomputes run on single rows, and the odd-k distance sums read the
// taken points' rows through matrix symmetry. Every consulted value is
// the square-rooted canonical square, consumed in the generic path's
// comparison and summation order, so the selected indices are
// bit-identical to the sequential scan's for every worker count and
// both engine modes.
func maxDispersionPairsEngine(e *Engine, k int) []int {
	n := e.n
	if k > n {
		k = n
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	farDist := make([]float64, n)
	farIdx := make([]int, n)
	for i := range farIdx {
		farIdx[i] = -1
		farDist[i] = math.Inf(-1)
	}
	e.farthestPartners(farDist, farIdx)
	rowBuf := e.rowScratch()
	recompute := func(i int) {
		row := e.sqRowInto(i, rowBuf)
		farDist[i], farIdx[i] = math.Inf(-1), -1
		for j := 0; j < n; j++ {
			if j == i || !alive[j] {
				continue
			}
			if dist := math.Sqrt(row[j]); dist > farDist[i] {
				farDist[i], farIdx[i] = dist, j
			}
		}
	}
	farthestAlivePair := func() (int, int) {
		for {
			bi := -1
			for i := 0; i < n; i++ {
				if alive[i] && (bi == -1 || farDist[i] > farDist[bi]) {
					bi = i
				}
			}
			if bi == -1 {
				return -1, -1
			}
			if bj := farIdx[bi]; bj >= 0 && alive[bj] {
				return bi, bj
			}
			recompute(bi)
			if farIdx[bi] == -1 {
				return -1, -1
			}
		}
	}
	taken := make([]int, 0, k)
	for len(taken)+2 <= k {
		bi, bj := farthestAlivePair()
		if bi == -1 {
			break
		}
		alive[bi], alive[bj] = false, false
		taken = append(taken, bi, bj)
	}
	if len(taken) < k {
		// Odd k: the distance sum accumulates sqrt'd entries in the order
		// the generic path sums d(pts[i], q) over the taken points; entry
		// (q, i) is bit-identical to entry (i, q) by symmetry, so reading
		// the taken points' rows — O(k) rows, computed on demand in tiled
		// mode — yields sums, and a chosen point, bit-identical to the
		// generic path's.
		takenRows := newSolRowSet(e, len(taken))
		for t, j := range taken {
			takenRows.load(t, j)
		}
		bi, best := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			var sum float64
			for t := range taken {
				sum += math.Sqrt(takenRows.row(t)[i])
			}
			if sum > best {
				bi, best = i, sum
			}
		}
		if bi >= 0 {
			alive[bi] = false
			taken = append(taken, bi)
		}
	}
	return taken
}

// localSearchCliqueEngine is LocalSearchClique run index-based on the
// engine. Contribution sums consume square-rooted entries in the
// generic path's order (through matrix symmetry), each swap sweep
// shards the candidate axis across workers and reduces with the
// lowest-(slot, candidate) tie-break, and the O(n) contribution updates
// shard by row ranges — so every sweep applies the same exchange as the
// sequential scan and the final solution is bit-identical, in both
// engine modes, for every worker count. The caller guarantees k < n.
func localSearchCliqueEngine(e *Engine, k, maxSweeps int) []int {
	n := e.n
	const safetyLimit = 1000
	if maxSweeps <= 0 || maxSweeps > safetyLimit {
		maxSweeps = safetyLimit
	}
	inSol := make([]bool, n)
	sol := make([]int, k)
	solRows := newSolRowSet(e, k)
	solRows.loadPrefix(k)
	for i := 0; i < k; i++ {
		inSol[i] = true
		sol[i] = i
	}
	contrib := make([]float64, n)
	chunkRanges := shardRanges(n, e.workers, minChunkRows)
	runShards(chunkRanges, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for si := range sol {
				sum += math.Sqrt(solRows.row(si)[i])
			}
			contrib[i] = sum
		}
	})
	sweepRanges := shardRanges(n, e.workers, minSweepCols)
	shardBest := make([]swapChoice, len(sweepRanges))
	newRowBuf := e.rowScratch()
	for sweep := 0; sweep < maxSweeps; sweep++ {
		runShards(sweepRanges, func(s, lo, hi int) {
			loc := swapChoice{delta: swapThreshold, si: -1, j: -1}
			for si := range sol {
				row := solRows.row(si)
				ci := contrib[sol[si]]
				for j := lo; j < hi; j++ {
					if inSol[j] {
						continue
					}
					if delta := contrib[j] - math.Sqrt(row[j]) - ci; delta > loc.delta {
						loc = swapChoice{delta: delta, si: si, j: j}
					}
				}
			}
			shardBest[s] = loc
		})
		choice := reduceSwaps(shardBest)
		if choice.si < 0 {
			break
		}
		oldIdx := sol[choice.si]
		newIdx := choice.j
		inSol[oldIdx], inSol[newIdx] = false, true
		sol[choice.si] = newIdx
		oldRow := solRows.row(choice.si)
		var newRow []float64
		if e.dm != nil {
			newRow = e.dm.SqRow(newIdx)
		} else {
			e.flat.FillSqRows(newIdx, newIdx+1, newRowBuf, 1)
			newRow = newRowBuf[:n]
		}
		runShards(chunkRanges, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				contrib[i] += math.Sqrt(newRow[i]) - math.Sqrt(oldRow[i])
			}
		})
		if e.dm != nil {
			solRows.rows[choice.si] = newRow
		} else {
			copy(oldRow, newRow) // refresh the slot in place
		}
	}
	return sol
}

// pick maps solver indices back to caller points.
func pick[P any](pts []P, idx []int) []P {
	out := make([]P, len(idx))
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}

// SolveEngine is Solve run on a prepared engine over the same points:
// the sharded MaxDispersionPairs for remote-clique, the engine-indexed
// farthest-first traversal for every other measure. It panics if k < 1
// or the engine size disagrees with len(pts).
func SolveEngine[P any](m diversity.Measure, pts []P, e *Engine, k int) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: SolveEngine requires k >= 1, got %d", k))
	}
	if len(pts) == 0 {
		return nil
	}
	if e == nil || e.n != len(pts) {
		panic(fmt.Sprintf("sequential: SolveEngine engine over %d points for %d input points", engineLen(e), len(pts)))
	}
	return pick(pts, SolveEngineIdx(m, e, k))
}

// SolveEngineIdx is SolveEngine returning indices into the engine's
// point set instead of materialized points — for callers that retain
// the point slice themselves and want to store or replay the selection
// (the divmaxd solution memo keeps indices so a later patched state can
// verify a stale answer against its delta). Same dispatch and same
// bit-identical-selection contract as SolveEngine. It panics if k < 1
// and returns nil for a nil or empty engine.
func SolveEngineIdx(m diversity.Measure, e *Engine, k int) []int {
	if k < 1 {
		panic(fmt.Sprintf("sequential: SolveEngineIdx requires k >= 1, got %d", k))
	}
	if e == nil || e.n == 0 {
		return nil
	}
	if m == diversity.RemoteClique {
		return maxDispersionPairsEngine(e, k)
	}
	return gmmEngine(e, k)
}

func engineLen(e *Engine) int {
	if e == nil {
		return -1
	}
	return e.n
}

// MaxDispersionPairsEngine is MaxDispersionPairs on a prepared engine;
// see maxDispersionPairsEngine for the bit-identity contract. It panics
// if k < 1 or the engine size disagrees with len(pts).
func MaxDispersionPairsEngine[P any](pts []P, e *Engine, k int) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: MaxDispersionPairs requires k >= 1, got %d", k))
	}
	if e == nil || e.n != len(pts) {
		panic(fmt.Sprintf("sequential: MaxDispersionPairsEngine engine over %d points for %d input points", engineLen(e), len(pts)))
	}
	return pick(pts, maxDispersionPairsEngine(e, k))
}

// LocalSearchCliqueEngine is LocalSearchClique on a prepared engine;
// see localSearchCliqueEngine for the bit-identity contract. It panics
// if k < 1 or the engine size disagrees with len(pts).
func LocalSearchCliqueEngine[P any](pts []P, e *Engine, k, maxSweeps int) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: LocalSearchClique requires k >= 1, got %d", k))
	}
	if e == nil || e.n != len(pts) {
		panic(fmt.Sprintf("sequential: LocalSearchCliqueEngine engine over %d points for %d input points", engineLen(e), len(pts)))
	}
	if k >= len(pts) {
		out := make([]P, len(pts))
		copy(out, pts)
		return out
	}
	return pick(pts, localSearchCliqueEngine(e, k, maxSweeps))
}
