package sequential

import (
	"fmt"
	"math"
	"runtime"

	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// Matrix-indexed round-2 solve engine.
//
// The sequential α-approximation algorithms this package runs on merged
// core-set unions are Ω(n²) in distance evaluations (MaxDispersionPairs'
// farthest-pair index, LocalSearchClique's swap scans), so on the
// Euclidean-over-Vector fast path they run index-based against a
// metric.DistMatrix: every pairwise squared distance is materialized
// once, filled in parallel on the canonical four-lane kernel, and the
// solvers replace each d(pts[i], pts[j]) callback with one load (plus
// one hardware square root where the generic path compared or summed
// real distances). Because matrix entries are the canonical squares,
// math.Sqrt of an entry is bit-identical to metric.Euclidean on the same
// rows, so MaxDispersionPairsMatrix and LocalSearchCliqueMatrix perform
// exactly the comparisons and sums of their generic counterparts and
// select bit-identical solutions — unconditionally, with no tie caveat.
// The GMM branch of SolveMatrix compares raw squares instead, matching
// the flat GMM kernel it mirrors (same selections as the generic
// traversal up to the sqrt-collapse caveat documented in
// internal/coreset/fastgmm.go).
//
// Dispatch mirrors PR 2's: the distance must BE metric.Euclidean
// (metric.IsEuclidean identity check) over []metric.Vector; wrappers and
// other metrics keep the generic path. A false negative only costs
// speed, never correctness.

// maxMatrixPoints caps the automatic matrix build: beyond it the n²
// buffer (8·n² bytes — 128 MiB at the cap) would risk dwarfing the
// core-set it serves. Callers with a known budget can still build
// bigger matrices explicitly via metric.NewDistMatrix.
const maxMatrixPoints = 4096

// autoMatrixSolve gates the solvers' internal dispatch to the matrix
// engine. A one-shot solve does the same Θ(n²) pair work either way, so
// the matrix only beats the callback path when the fill runs wider than
// the solve — i.e. on more than one core; on a single core the fill is
// pure added latency. Explicit-matrix callers are unaffected: when the
// fill is amortized across queries (the divmaxd snapshot cache) or
// handed down prebuilt (SolveMatrix), the matrix path wins regardless
// of core count. A variable so tests can force both paths on any
// machine.
var autoMatrixSolve = runtime.NumCPU() > 1

// AutoMatrix is BuildMatrix behind the autoMatrixSolve gate: it builds
// only when a one-shot matrix solve is expected to beat the callback
// path. It is the entry point of the solvers' internal dispatch and of
// mrdiv.SolveCoresets' per-union build; callers that amortize the fill
// across several solves (the divmaxd query cache) use BuildMatrix
// directly.
func AutoMatrix[P any](pts []P, d metric.Distance[P], workers int) *metric.DistMatrix {
	if !autoMatrixSolve {
		return nil
	}
	return BuildMatrix(pts, d, workers)
}

// BuildMatrix materializes the pairwise squared-distance matrix of pts
// when the matrix fast path applies — d is metric.Euclidean, the points
// are []metric.Vector of uniform dimension, and 2 ≤ n ≤ 4096 — filling
// rows in parallel across workers goroutines (≤ 0 means NumCPU). It
// returns nil when the fast path does not apply, in which case callers
// run the generic solvers. mrdiv.SolveCoresets builds one matrix per
// round-2 union and hands it to SolveMatrix; the divmaxd query cache
// retains the matrix across queries of an unchanged stream.
func BuildMatrix[P any](pts []P, d metric.Distance[P], workers int) *metric.DistMatrix {
	return buildMatrixCapped(pts, d, workers, maxMatrixPoints)
}

// buildMatrixCapped is BuildMatrix with an explicit point cap (tests
// exercise the cap without paying for a 4096-point build).
func buildMatrixCapped[P any](pts []P, d metric.Distance[P], workers, cap int) *metric.DistMatrix {
	if len(pts) < 2 || len(pts) > cap || !metric.IsEuclidean(d) {
		return nil
	}
	vecs, ok := any(pts).([]metric.Vector)
	if !ok {
		return nil
	}
	var flat metric.Points
	if !flat.Fill(vecs) {
		return nil // ragged rows: the generic path surfaces the panic
	}
	return metric.NewDistMatrix(&flat, workers)
}

// SolveMatrix is Solve run index-based against a precomputed DistMatrix
// over the same points: MaxDispersionPairsMatrix for remote-clique, the
// matrix-indexed farthest-first traversal for every other measure. It
// panics if k < 1 or the matrix size disagrees with len(pts).
func SolveMatrix[P any](m diversity.Measure, pts []P, dm *metric.DistMatrix, k int) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: SolveMatrix requires k >= 1, got %d", k))
	}
	if len(pts) == 0 {
		return nil
	}
	if dm == nil || dm.Len() != len(pts) {
		panic(fmt.Sprintf("sequential: SolveMatrix matrix over %d points for %d input points", matrixLen(dm), len(pts)))
	}
	if m == diversity.RemoteClique {
		return maxDispersionPairsMatrix(pts, dm, k)
	}
	return gmmMatrix(pts, dm, k)
}

func matrixLen(dm *metric.DistMatrix) int {
	if dm == nil {
		return -1
	}
	return dm.Len()
}

// gmmMatrix is the farthest-first traversal of Solve's GMM branch run on
// matrix rows: relaxing against a new center scans its row once, one
// load per point. It compares raw squares with the flat GMM kernel's
// bookkeeping (strict '<' keeps ties on the earliest center, strict '>'
// on an ascending scan keeps the lowest index), so it selects exactly
// the points coreset.GMM's fast path selects. Starts from index 0, as
// Solve does.
func gmmMatrix[P any](pts []P, dm *metric.DistMatrix, k int) []P {
	n := len(pts)
	if k > n {
		k = n
	}
	minSq := make([]float64, n)
	for i := range minSq {
		minSq[i] = math.Inf(1)
	}
	out := make([]P, 0, k)
	cur := 0
	for sel := 0; sel < k; sel++ {
		out = append(out, pts[cur])
		row := dm.SqRow(cur)
		next, nextSq := cur, math.Inf(-1)
		for i := 0; i < n; i++ {
			m := minSq[i]
			if sq := row[i]; sq < m {
				m = sq
				minSq[i] = sq
			}
			if m > nextSq {
				next, nextSq = i, m
			}
		}
		cur = next
	}
	return out
}

// MaxDispersionPairsMatrix is MaxDispersionPairs run index-based against
// a precomputed DistMatrix over the same points: the O(n²) farthest-
// partner pass and every recomputation read matrix rows instead of
// evaluating distances. Each consulted entry is square-rooted, so every
// comparison and the odd-k distance sums operate on values bit-identical
// to the generic path's — the selected solution is identical. It panics
// if k < 1 or the matrix size disagrees with len(pts).
func MaxDispersionPairsMatrix[P any](pts []P, dm *metric.DistMatrix, k int) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: MaxDispersionPairs requires k >= 1, got %d", k))
	}
	if dm == nil || dm.Len() != len(pts) {
		panic(fmt.Sprintf("sequential: MaxDispersionPairsMatrix matrix over %d points for %d input points", matrixLen(dm), len(pts)))
	}
	return maxDispersionPairsMatrix(pts, dm, k)
}

// maxDispersionPairsMatrix is the validated body of
// MaxDispersionPairsMatrix; it mirrors MaxDispersionPairs line for line
// with d(pts[i], pts[j]) replaced by a row load + math.Sqrt.
func maxDispersionPairsMatrix[P any](pts []P, dm *metric.DistMatrix, k int) []P {
	n := len(pts)
	if k > n {
		k = n
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	farDist := make([]float64, n)
	farIdx := make([]int, n)
	for i := range farIdx {
		farIdx[i] = -1
		farDist[i] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		row := dm.SqRow(i)
		for j := i + 1; j < n; j++ {
			dist := math.Sqrt(row[j])
			if dist > farDist[i] {
				farDist[i], farIdx[i] = dist, j
			}
			if dist > farDist[j] {
				farDist[j], farIdx[j] = dist, i
			}
		}
	}
	recompute := func(i int) {
		farDist[i], farIdx[i] = math.Inf(-1), -1
		row := dm.SqRow(i)
		for j := 0; j < n; j++ {
			if j == i || !alive[j] {
				continue
			}
			if dist := math.Sqrt(row[j]); dist > farDist[i] {
				farDist[i], farIdx[i] = dist, j
			}
		}
	}
	farthestAlivePair := func() (int, int) {
		for {
			bi := -1
			for i := 0; i < n; i++ {
				if alive[i] && (bi == -1 || farDist[i] > farDist[bi]) {
					bi = i
				}
			}
			if bi == -1 {
				return -1, -1
			}
			if bj := farIdx[bi]; bj >= 0 && alive[bj] {
				return bi, bj
			}
			recompute(bi)
			if farIdx[bi] == -1 {
				return -1, -1
			}
		}
	}
	out := make([]P, 0, k)
	taken := make([]int, 0, k)
	for len(out)+2 <= k {
		bi, bj := farthestAlivePair()
		if bi == -1 {
			break
		}
		alive[bi], alive[bj] = false, false
		out = append(out, pts[bi], pts[bj])
		taken = append(taken, bi, bj)
	}
	if len(out) < k {
		// Odd k: the distance sum accumulates sqrt'd entries in the same
		// order the generic path sums d(pts[i], q), so the sums — and the
		// chosen point — are bit-identical.
		bi, best := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			row := dm.SqRow(i)
			var sum float64
			for _, j := range taken {
				sum += math.Sqrt(row[j])
			}
			if sum > best {
				bi, best = i, sum
			}
		}
		if bi >= 0 {
			alive[bi] = false
			out = append(out, pts[bi])
		}
	}
	return out
}

// LocalSearchCliqueMatrix is LocalSearchClique run index-based against a
// precomputed DistMatrix over the same points. Contribution sums and
// swap deltas consume square-rooted entries in the generic path's exact
// order, so every sweep applies the same exchange and the final solution
// is bit-identical. It panics if k < 1 or the matrix size disagrees with
// len(pts).
func LocalSearchCliqueMatrix[P any](pts []P, dm *metric.DistMatrix, k, maxSweeps int) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: LocalSearchClique requires k >= 1, got %d", k))
	}
	if dm == nil || dm.Len() != len(pts) {
		panic(fmt.Sprintf("sequential: LocalSearchCliqueMatrix matrix over %d points for %d input points", matrixLen(dm), len(pts)))
	}
	return localSearchCliqueMatrix(pts, dm, k, maxSweeps)
}

// localSearchCliqueMatrix is the validated body of
// LocalSearchCliqueMatrix, mirroring LocalSearchClique line for line.
func localSearchCliqueMatrix[P any](pts []P, dm *metric.DistMatrix, k, maxSweeps int) []P {
	n := len(pts)
	if k >= n {
		out := make([]P, n)
		copy(out, pts)
		return out
	}
	const safetyLimit = 1000
	if maxSweeps <= 0 || maxSweeps > safetyLimit {
		maxSweeps = safetyLimit
	}
	inSol := make([]bool, n)
	sol := make([]int, k)
	for i := 0; i < k; i++ {
		inSol[i] = true
		sol[i] = i
	}
	contrib := make([]float64, n)
	for i := 0; i < n; i++ {
		row := dm.SqRow(i)
		for _, j := range sol {
			contrib[i] += math.Sqrt(row[j])
		}
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		bestDelta, bestOut, bestIn := 1e-12, -1, -1
		for si, i := range sol {
			row := dm.SqRow(i)
			ci := contrib[i]
			for j := 0; j < n; j++ {
				if inSol[j] {
					continue
				}
				delta := contrib[j] - math.Sqrt(row[j]) - ci
				if delta > bestDelta {
					bestDelta, bestOut, bestIn = delta, si, j
				}
			}
		}
		if bestOut < 0 {
			break
		}
		oldIdx := sol[bestOut]
		newIdx := bestIn
		inSol[oldIdx], inSol[newIdx] = false, true
		sol[bestOut] = newIdx
		newRow := dm.SqRow(newIdx)
		oldRow := dm.SqRow(oldIdx)
		for i := 0; i < n; i++ {
			contrib[i] += math.Sqrt(newRow[i]) - math.Sqrt(oldRow[i])
		}
	}
	out := make([]P, k)
	for i, j := range sol {
		out[i] = pts[j]
	}
	return out
}
