package sequential

import (
	"fmt"
	"math"
	"runtime"

	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// Matrix-indexed round-2 solve entry points.
//
// The sequential α-approximation algorithms this package runs on merged
// core-set unions are Ω(n²) in distance evaluations (MaxDispersionPairs'
// farthest-pair index, LocalSearchClique's swap scans), so on the
// Euclidean-over-Vector fast path they run index-based against the
// solve engine of engine.go: every pairwise squared distance is either
// materialized once in a metric.DistMatrix (filled in parallel on the
// canonical four-lane kernel) or streamed through row-block tiles when
// the matrix would blow the memory budget, and the solvers replace each
// d(pts[i], pts[j]) callback with one load (plus one hardware square
// root where the generic path compared or summed real distances).
// Because every entry is the canonical square, math.Sqrt of an entry is
// bit-identical to metric.Euclidean on the same rows, so the engine
// solvers perform exactly the comparisons and sums of their generic
// counterparts and select bit-identical solutions — unconditionally,
// with no tie caveat, for every worker count and both engine modes.
// The GMM branch of SolveMatrix compares raw squares instead, matching
// the flat GMM kernel it mirrors (same selections as the generic
// traversal up to the sqrt-collapse caveat documented in
// internal/coreset/fastgmm.go).
//
// Dispatch mirrors PR 2's: the distance must BE metric.Euclidean
// (metric.IsEuclidean identity check) over []metric.Vector; wrappers and
// other metrics keep the generic path. A false negative only costs
// speed, never correctness.

// autoMatrixSolve gates the solvers' internal dispatch to the engine.
// A one-shot solve does the same Θ(n²) pair work either way, so the
// engine only beats the callback path when its fills and scans run
// wider than one core; on a single core the fill is pure added latency.
// Explicit-matrix callers are unaffected: when the fill is amortized
// across queries (the divmaxd snapshot cache) or handed down prebuilt
// (SolveMatrix), the engine path wins regardless of core count. A
// variable so tests can force both paths on any machine.
var autoMatrixSolve = runtime.NumCPU() > 1

// maxBudgetPoints returns the largest point count whose full matrix
// (8·n² bytes) fits MatrixBudget — the matrix/tiled mode boundary.
func maxBudgetPoints() int {
	n := int(math.Sqrt(float64(MatrixBudget) / 8))
	for int64(n)*int64(n)*8 > MatrixBudget && n > 0 {
		n--
	}
	return n
}

// AutoMatrix is BuildMatrix behind the autoMatrixSolve gate; see
// AutoEngine, which supersedes it for callers that also want tiled
// mode. It returns nil when the gate is off or the matrix does not
// apply.
func AutoMatrix[P any](pts []P, d metric.Distance[P], workers int) *metric.DistMatrix {
	if !autoMatrixSolve {
		return nil
	}
	return BuildMatrix(pts, d, workers)
}

// BuildMatrix materializes the pairwise squared-distance matrix of pts
// when the matrix fast path applies — d is metric.Euclidean, the points
// are []metric.Vector of uniform dimension, n ≥ 2, and the 8·n² buffer
// fits MatrixBudget — filling rows in parallel across workers
// goroutines (≤ 0 means NumCPU). It returns nil when the fast path does
// not apply, in which case callers run the generic solvers or, past the
// budget, the tiled engine (BuildEngine). The divmaxd query cache
// retains the matrix across queries of an unchanged stream.
func BuildMatrix[P any](pts []P, d metric.Distance[P], workers int) *metric.DistMatrix {
	return buildMatrixCapped(pts, d, workers, maxBudgetPoints())
}

// buildMatrixCapped is BuildMatrix with an explicit point cap (tests
// exercise the cap without paying for a budget-sized build).
func buildMatrixCapped[P any](pts []P, d metric.Distance[P], workers, cap int) *metric.DistMatrix {
	if len(pts) < 2 || len(pts) > cap || !metric.IsEuclidean(d) {
		return nil
	}
	vecs, ok := any(pts).([]metric.Vector)
	if !ok {
		return nil
	}
	var flat metric.Points
	if !flat.Fill(vecs) {
		return nil // ragged rows: the generic path surfaces the panic
	}
	return metric.NewDistMatrix(&flat, workers)
}

// SolveMatrix is Solve run index-based against a precomputed DistMatrix
// over the same points: MaxDispersionPairsMatrix for remote-clique, the
// matrix-indexed farthest-first traversal for every other measure. The
// Ω(n²) scans shard across NumCPU workers (SolveEngine takes an
// explicit worker count). It panics if k < 1 or the matrix size
// disagrees with len(pts).
func SolveMatrix[P any](m diversity.Measure, pts []P, dm *metric.DistMatrix, k int) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: SolveMatrix requires k >= 1, got %d", k))
	}
	if len(pts) == 0 {
		return nil
	}
	if dm == nil || dm.Len() != len(pts) {
		panic(fmt.Sprintf("sequential: SolveMatrix matrix over %d points for %d input points", matrixLen(dm), len(pts)))
	}
	return SolveEngine(m, pts, engineFromMatrix(dm, 0), k)
}

func matrixLen(dm *metric.DistMatrix) int {
	if dm == nil {
		return -1
	}
	return dm.Len()
}

// MaxDispersionPairsMatrix is MaxDispersionPairs run index-based against
// a precomputed DistMatrix over the same points, with the O(n²)
// farthest-partner pass sharded across NumCPU workers; the selected
// solution is bit-identical to the generic path's (engine.go). It panics
// if k < 1 or the matrix size disagrees with len(pts).
func MaxDispersionPairsMatrix[P any](pts []P, dm *metric.DistMatrix, k int) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: MaxDispersionPairs requires k >= 1, got %d", k))
	}
	if dm == nil || dm.Len() != len(pts) {
		panic(fmt.Sprintf("sequential: MaxDispersionPairsMatrix matrix over %d points for %d input points", matrixLen(dm), len(pts)))
	}
	return pick(pts, maxDispersionPairsEngine(engineFromMatrix(dm, 0), k))
}

// LocalSearchCliqueMatrix is LocalSearchClique run index-based against a
// precomputed DistMatrix over the same points, with each swap sweep
// sharded across NumCPU workers; every sweep applies the same exchange
// as the generic path and the final solution is bit-identical
// (engine.go). It panics if k < 1 or the matrix size disagrees with
// len(pts).
func LocalSearchCliqueMatrix[P any](pts []P, dm *metric.DistMatrix, k, maxSweeps int) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: LocalSearchClique requires k >= 1, got %d", k))
	}
	if dm == nil || dm.Len() != len(pts) {
		panic(fmt.Sprintf("sequential: LocalSearchCliqueMatrix matrix over %d points for %d input points", matrixLen(dm), len(pts)))
	}
	return LocalSearchCliqueEngine(pts, engineFromMatrix(dm, 0), k, maxSweeps)
}
