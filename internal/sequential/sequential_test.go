package sequential

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		pts[i] = v
	}
	return pts
}

func evalOf(m diversity.Measure, pts []metric.Vector) float64 {
	v, _ := diversity.Evaluate(m, pts, metric.Euclidean)
	return v
}

func TestSolveSizeAndClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomVectors(rng, 10, 2)
	for _, m := range diversity.Measures {
		if got := Solve(m, pts, 4, metric.Euclidean); len(got) != 4 {
			t.Errorf("%v: Solve returned %d points, want 4", m, len(got))
		}
		if got := Solve(m, pts, 99, metric.Euclidean); len(got) != 10 {
			t.Errorf("%v: Solve with k>n returned %d points, want 10", m, len(got))
		}
		if got := Solve(m, nil, 3, metric.Euclidean); got != nil {
			t.Errorf("%v: Solve on empty input = %v, want nil", m, got)
		}
	}
}

func TestSolvePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Solve(diversity.RemoteEdge, []metric.Vector{{0}}, 0, metric.Euclidean)
}

// Approximation-factor property tests: Solve must stay within the proven
// sequential factor α of the brute-force optimum (Table 1).
func testApproxFactor(t *testing.T, m diversity.Measure, factor float64) {
	t.Helper()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(5)   // ≤ 10
		k := 2 + 2*rng.Intn(2) // 2 or 4 (even: the clique bound is proven for even k)
		pts := randomVectors(rng, n, 2)
		sol := Solve(m, pts, k, metric.Euclidean)
		got := evalOf(m, sol)
		_, opt, _ := BruteForce(m, pts, k, metric.Euclidean)
		if got < opt/factor-1e-9 {
			t.Logf("%v: got %v, opt %v, factor %v (seed %d)", m, got, opt, factor, seed)
			return false
		}
		return got <= opt+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("%v approximation factor violated: %v", m, err)
	}
}

func TestSolveApproxRemoteEdge(t *testing.T)   { testApproxFactor(t, diversity.RemoteEdge, 2) }
func TestSolveApproxRemoteClique(t *testing.T) { testApproxFactor(t, diversity.RemoteClique, 2) }
func TestSolveApproxRemoteStar(t *testing.T)   { testApproxFactor(t, diversity.RemoteStar, 2) }
func TestSolveApproxRemoteBipartition(t *testing.T) {
	testApproxFactor(t, diversity.RemoteBipartition, 3)
}
func TestSolveApproxRemoteTree(t *testing.T)  { testApproxFactor(t, diversity.RemoteTree, 4) }
func TestSolveApproxRemoteCycle(t *testing.T) { testApproxFactor(t, diversity.RemoteCycle, 3) }

func TestMaxDispersionPairsTakesFarthestPairFirst(t *testing.T) {
	pts := []metric.Vector{{0}, {1}, {50}, {100}}
	sol := MaxDispersionPairs(pts, 2, metric.Euclidean)
	// Farthest pair is {0},{100}.
	vals := map[float64]bool{sol[0][0]: true, sol[1][0]: true}
	if !vals[0] || !vals[100] {
		t.Fatalf("first pair = %v, want {0} and {100}", sol)
	}
}

func TestMaxDispersionPairsOddK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomVectors(rng, 9, 2)
	sol := MaxDispersionPairs(pts, 5, metric.Euclidean)
	if len(sol) != 5 {
		t.Fatalf("odd k solution size = %d, want 5", len(sol))
	}
	// Odd k keeps a good ratio in practice; assert a loose factor.
	_, opt, _ := BruteForce(diversity.RemoteClique, pts, 5, metric.Euclidean)
	if got := evalOf(diversity.RemoteClique, sol); got < opt/2.5 {
		t.Fatalf("odd-k dispersion %v below opt/2.5 (%v)", got, opt/2.5)
	}
}

func TestLocalSearchCliqueImprovesOrMatchesStart(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		k := 2 + rng.Intn(3)
		pts := randomVectors(rng, n, 2)
		sol := LocalSearchClique(pts, k, 0, metric.Euclidean)
		if len(sol) != k {
			return false
		}
		start := evalOf(diversity.RemoteClique, pts[:k])
		return evalOf(diversity.RemoteClique, sol) >= start-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchCliqueIsLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randomVectors(rng, 14, 2)
	k := 4
	sol := LocalSearchClique(pts, k, 0, metric.Euclidean)
	base := evalOf(diversity.RemoteClique, sol)
	// No single swap with any outside point improves the objective.
	inSol := func(p metric.Vector) bool {
		for _, q := range sol {
			if metric.Euclidean(p, q) == 0 {
				return true
			}
		}
		return false
	}
	for _, cand := range pts {
		if inSol(cand) {
			continue
		}
		for i := range sol {
			trial := make([]metric.Vector, k)
			copy(trial, sol)
			trial[i] = cand
			if evalOf(diversity.RemoteClique, trial) > base+1e-9 {
				t.Fatalf("found improving swap after local search: %v > %v", evalOf(diversity.RemoteClique, trial), base)
			}
		}
	}
}

func TestLocalSearchCliqueNearOptimal(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(4)
		k := 2 + rng.Intn(3)
		pts := randomVectors(rng, n, 2)
		sol := LocalSearchClique(pts, k, 0, metric.Euclidean)
		_, opt, _ := BruteForce(diversity.RemoteClique, pts, k, metric.Euclidean)
		return evalOf(diversity.RemoteClique, sol) >= opt/2-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchCliqueKGeqN(t *testing.T) {
	pts := []metric.Vector{{0}, {1}}
	sol := LocalSearchClique(pts, 5, 0, metric.Euclidean)
	if len(sol) != 2 {
		t.Fatalf("k>=n local search size = %d, want 2", len(sol))
	}
}

func TestBruteForceKnownOptimum(t *testing.T) {
	// Points on a line; k=2 remote-edge optimum is the extreme pair.
	pts := []metric.Vector{{0}, {1}, {4}, {9}}
	sol, val, exact := BruteForce(diversity.RemoteEdge, pts, 2, metric.Euclidean)
	if !exact || !almostEqual(val, 9, 1e-12) {
		t.Fatalf("BruteForce = (%v, %v, %v), want value 9", sol, val, exact)
	}
}

func TestBruteForceClipsK(t *testing.T) {
	pts := []metric.Vector{{0}, {1}}
	sol, _, _ := BruteForce(diversity.RemoteClique, pts, 5, metric.Euclidean)
	if len(sol) != 2 {
		t.Fatalf("BruteForce k>n size = %d, want 2", len(sol))
	}
}

// --- Generalized solvers ---

func genFromPoints(pts []metric.Vector, mult []int) coreset.Generalized[metric.Vector] {
	g := make(coreset.Generalized[metric.Vector], len(pts))
	for i := range pts {
		g[i] = coreset.Weighted[metric.Vector]{Point: pts[i], Mult: mult[i]}
	}
	return g
}

func TestSolveGeneralizedExpandedSize(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		pts := randomVectors(rng, n, 2)
		mult := make([]int, n)
		for i := range mult {
			mult[i] = 1 + rng.Intn(3)
		}
		g := genFromPoints(pts, mult)
		k := 2 + rng.Intn(5)
		for _, m := range diversity.Measures {
			sub := SolveGeneralized(m, g, k, metric.Euclidean)
			want := k
			if total := g.ExpandedSize(); want > total {
				want = total
			}
			if sub.ExpandedSize() != want {
				t.Logf("%v: expanded size %d, want %d (seed %d)", m, sub.ExpandedSize(), want, seed)
				return false
			}
			// Coherence: every selected multiplicity within bounds.
			for _, w := range sub {
				found := false
				for _, orig := range g {
					if metric.Euclidean(w.Point, orig.Point) == 0 && w.Mult <= orig.Mult {
						found = true
						break
					}
				}
				if !found {
					t.Logf("%v: incoherent pair %+v (seed %d)", m, w, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolveGeneralizedUnitMultiplicitiesMatchSolve(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6)
		pts := randomVectors(rng, n, 2)
		mult := make([]int, n)
		for i := range mult {
			mult[i] = 1
		}
		g := genFromPoints(pts, mult)
		k := 2 + rng.Intn(3)
		for _, m := range []diversity.Measure{diversity.RemoteEdge, diversity.RemoteClique, diversity.RemoteTree} {
			sub := SolveGeneralized(m, g, k, metric.Euclidean)
			subPts, subMult := sub.Split()
			got, _ := diversity.EvaluateWeighted(m, subPts, subMult, metric.Euclidean)
			want := evalOf(m, Solve(m, pts, k, metric.Euclidean))
			if !almostEqual(got, want, 1e-9) {
				t.Logf("%v: generalized %v vs plain %v (seed %d)", m, got, want, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolveGeneralizedQuality(t *testing.T) {
	// Fact 2: the adapted solvers keep their factor α against the exact
	// generalized optimum.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3) // ≤ 5 pairs for the brute force
		pts := randomVectors(rng, n, 2)
		mult := make([]int, n)
		for i := range mult {
			mult[i] = 1 + rng.Intn(3)
		}
		g := genFromPoints(pts, mult)
		k := 2 + rng.Intn(3)
		for _, m := range []diversity.Measure{diversity.RemoteClique, diversity.RemoteStar, diversity.RemoteBipartition, diversity.RemoteTree} {
			sub := SolveGeneralized(m, g, k, metric.Euclidean)
			subPts, subMult := sub.Split()
			got, _ := diversity.EvaluateWeighted(m, subPts, subMult, metric.Euclidean)
			opt := BruteForceGeneralized(m, g, k, metric.Euclidean)
			if got < opt/m.SequentialAlpha()-1e-9 {
				t.Logf("%v: got %v, opt %v (seed %d)", m, got, opt, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSolveGeneralizedReplicasOnlyWhenForced(t *testing.T) {
	// Two distinct points with multiplicity 3 each, k=2: solvers must take
	// one replica of each (never two replicas of one point, which would
	// have distance 0).
	g := genFromPoints([]metric.Vector{{0}, {10}}, []int{3, 3})
	for _, m := range []diversity.Measure{diversity.RemoteEdge, diversity.RemoteClique} {
		sub := SolveGeneralized(m, g, 2, metric.Euclidean)
		if sub.Size() != 2 {
			t.Errorf("%v: selected %d distinct points, want 2", m, sub.Size())
		}
		for _, w := range sub {
			if w.Mult != 1 {
				t.Errorf("%v: multiplicity %d, want 1", m, w.Mult)
			}
		}
	}
	// k = 7 > m(T)... clipped to 6 and must use all replicas.
	sub := SolveGeneralized(diversity.RemoteClique, g, 7, metric.Euclidean)
	if sub.ExpandedSize() != 6 {
		t.Errorf("clipped expanded size = %d, want 6", sub.ExpandedSize())
	}
}

func TestSolveGeneralizedEmptyAndPanics(t *testing.T) {
	if out := SolveGeneralized(diversity.RemoteEdge, coreset.Generalized[metric.Vector]{}, 2, metric.Euclidean); out != nil {
		t.Errorf("empty generalized solve = %v, want nil", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on k < 1")
		}
	}()
	SolveGeneralized(diversity.RemoteEdge, coreset.Generalized[metric.Vector]{}, 0, metric.Euclidean)
}

func TestBruteForceGeneralizedKnown(t *testing.T) {
	// {a×2, b×1} with d(a,b)=3, k=2: best coherent subset is {a,b} with
	// clique value 3 (taking a twice gives 0).
	g := genFromPoints([]metric.Vector{{0}, {3}}, []int{2, 1})
	if got := BruteForceGeneralized(diversity.RemoteClique, g, 2, metric.Euclidean); !almostEqual(got, 3, 1e-12) {
		t.Errorf("gen-div_2 = %v, want 3", got)
	}
	// k=3 forces the replica: a,a,b → 3+3+0 = 6.
	if got := BruteForceGeneralized(diversity.RemoteClique, g, 3, metric.Euclidean); !almostEqual(got, 6, 1e-12) {
		t.Errorf("gen-div_3 = %v, want 6", got)
	}
}
