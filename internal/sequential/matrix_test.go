package sequential

import (
	"math"
	"math/rand"
	"testing"

	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// genericEuclid has the same semantics as metric.Euclidean but is a
// distinct function, so IsEuclidean does not recognize it and every
// solver driven by it takes the generic callback path — the reference
// implementation of the equivalence tests (mirroring
// internal/coreset/fast_test.go).
func genericEuclid(a, b metric.Vector) float64 { return metric.Euclidean(a, b) }

// tieHeavyVectors draws coordinates from a small integer grid, so the
// input is dense with duplicate points and exactly tied distances — the
// regime where any divergence between the matrix and generic paths
// would surface.
func tieHeavyVectors(rng *rand.Rand, n, dim int) []metric.Vector {
	pts := make([]metric.Vector, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = float64(rng.Intn(4))
		}
		pts[i] = v
	}
	return pts
}

func sameSolution(t *testing.T, label string, fast, slow []metric.Vector) {
	t.Helper()
	if len(fast) != len(slow) {
		t.Fatalf("%s: matrix selected %d points, generic %d", label, len(fast), len(slow))
	}
	for i := range fast {
		if len(fast[i]) != len(slow[i]) {
			t.Fatalf("%s: point %d dimension differs", label, i)
		}
		for j := range fast[i] {
			if math.Float64bits(fast[i][j]) != math.Float64bits(slow[i][j]) {
				t.Fatalf("%s: point %d differs: matrix %v, generic %v", label, i, fast[i], slow[i])
			}
		}
	}
}

func testVectors(rng *rand.Rand, seed int64, n, dim int) []metric.Vector {
	if seed%2 == 0 {
		return randomVectors(rng, n, dim)
	}
	return tieHeavyVectors(rng, n, dim)
}

// forceAutoMatrix pins the solvers' internal matrix dispatch on or off
// for the duration of a test, so the equivalence suites exercise the
// matrix path regardless of the machine's core count (the gate defaults
// to off on single-core machines).
func forceAutoMatrix(t testing.TB, on bool) {
	t.Helper()
	orig := autoMatrixSolve
	autoMatrixSolve = on
	t.Cleanup(func() { autoMatrixSolve = orig })
}

// TestMatrixFastPathDispatches pins that Euclidean-over-Vector actually
// builds a matrix (a regression here would silently turn the fast path
// off and only show up in benchmarks), and that wrappers, other metrics,
// ragged rows, singletons, and over-cap inputs keep the generic path.
func TestMatrixFastPathDispatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomVectors(rng, 50, 3)
	if BuildMatrix(pts, metric.Euclidean, 0) == nil {
		t.Fatal("BuildMatrix rejected Euclidean over Vector")
	}
	if BuildMatrix(pts, metric.Distance[metric.Vector](genericEuclid), 0) != nil {
		t.Fatal("BuildMatrix accepted a wrapper distance")
	}
	if BuildMatrix(pts, metric.Manhattan, 0) != nil {
		t.Fatal("BuildMatrix accepted Manhattan")
	}
	if BuildMatrix([]metric.Vector{{1, 2}, {3}}, metric.Euclidean, 0) != nil {
		t.Fatal("BuildMatrix accepted ragged input")
	}
	if BuildMatrix(pts[:1], metric.Euclidean, 0) != nil {
		t.Fatal("BuildMatrix accepted a singleton (nothing to materialize)")
	}
	if buildMatrixCapped(pts, metric.Euclidean, 0, 49) != nil {
		t.Fatal("BuildMatrix exceeded the point cap")
	}
	if dm := buildMatrixCapped(pts, metric.Euclidean, 0, 50); dm == nil || dm.Len() != 50 {
		t.Fatal("BuildMatrix rejected an input at the point cap")
	}
	forceAutoMatrix(t, false)
	if AutoMatrix(pts, metric.Euclidean, 0) != nil {
		t.Fatal("AutoMatrix built despite the dispatch gate being off")
	}
	forceAutoMatrix(t, true)
	if AutoMatrix(pts, metric.Euclidean, 0) == nil {
		t.Fatal("AutoMatrix did not build with the dispatch gate on")
	}
}

// TestMaxDispersionPairsMatrixMatchesGeneric is the tentpole equivalence
// test for the remote-clique solver: across seeds, dimensions, sizes,
// and k (odd, even, and above n), the matrix-indexed path returns
// bit-identical solutions — including on tie-heavy inputs. It pins both
// the internal dispatch (MaxDispersionPairs with metric.Euclidean) and
// the explicit-matrix entry point.
func TestMaxDispersionPairsMatrixMatchesGeneric(t *testing.T) {
	forceAutoMatrix(t, true)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, dim := range []int{1, 2, 3, 4, 8} {
			for _, n := range []int{2, 3, 7, 60, 150} {
				pts := testVectors(rng, seed, n, dim)
				k := 1 + rng.Intn(n+3)
				fast := MaxDispersionPairs(pts, k, metric.Euclidean)
				slow := MaxDispersionPairs(pts, k, metric.Distance[metric.Vector](genericEuclid))
				sameSolution(t, "MaxDispersionPairs", fast, slow)
				explicit := MaxDispersionPairsMatrix(pts, BuildMatrix(pts, metric.Euclidean, 0), k)
				sameSolution(t, "MaxDispersionPairsMatrix", explicit, slow)
			}
		}
	}
}

// TestLocalSearchCliqueMatrixMatchesGeneric: every sweep of the
// matrix-indexed local search must apply the same exchange as the
// generic path, so the final solutions agree bit for bit across sweep
// budgets (including unbounded).
func TestLocalSearchCliqueMatrixMatchesGeneric(t *testing.T) {
	forceAutoMatrix(t, true)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range []int{2, 9, 40, 120} {
			pts := testVectors(rng, seed, n, 1+int(seed%4))
			k := 1 + rng.Intn(n+2)
			for _, sweeps := range []int{0, 1, 5} {
				fast := LocalSearchClique(pts, k, sweeps, metric.Euclidean)
				slow := LocalSearchClique(pts, k, sweeps, metric.Distance[metric.Vector](genericEuclid))
				sameSolution(t, "LocalSearchClique", fast, slow)
			}
			if k <= n {
				explicit := LocalSearchCliqueMatrix(pts, BuildMatrix(pts, metric.Euclidean, 0), k, 3)
				slow := LocalSearchClique(pts, k, 3, metric.Distance[metric.Vector](genericEuclid))
				sameSolution(t, "LocalSearchCliqueMatrix", explicit, slow)
			}
		}
	}
}

// TestSolveMatrixMatchesSolve: SolveMatrix over a prebuilt matrix must
// agree with Solve's own fast path for every measure — the contract the
// divmaxd query cache relies on when it reuses one matrix across
// queries.
func TestSolveMatrixMatchesSolve(t *testing.T) {
	forceAutoMatrix(t, true)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(90)
		pts := testVectors(rng, seed, n, 2+int(seed%3))
		dm := BuildMatrix(pts, metric.Euclidean, 0)
		if dm == nil {
			t.Fatal("BuildMatrix rejected Euclidean over Vector")
		}
		k := 1 + rng.Intn(12)
		for _, m := range diversity.Measures {
			viaMatrix := SolveMatrix(m, pts, dm, k)
			direct := Solve(m, pts, k, metric.Euclidean)
			sameSolution(t, "SolveMatrix/"+m.String(), viaMatrix, direct)
		}
	}
}

// TestSolveFastPathMatchesGeneric ties Solve's Euclidean fast path to
// the generic callback path across all six measures. (The clique branch
// is unconditionally bit-identical; the GMM branch compares squares, so
// it matches the generic traversal exactly as the flat-kernel
// equivalence tests in internal/coreset pin.)
func TestSolveFastPathMatchesGeneric(t *testing.T) {
	forceAutoMatrix(t, true)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		pts := testVectors(rng, seed, n, 1+int(seed%4))
		k := 1 + rng.Intn(n+2)
		for _, m := range diversity.Measures {
			fast := Solve(m, pts, k, metric.Euclidean)
			slow := Solve(m, pts, k, metric.Distance[metric.Vector](genericEuclid))
			sameSolution(t, "Solve/"+m.String(), fast, slow)
		}
	}
}

func TestSolveMatrixValidation(t *testing.T) {
	pts := randomVectors(rand.New(rand.NewSource(2)), 10, 2)
	dm := BuildMatrix(pts, metric.Euclidean, 0)
	if got := SolveMatrix(diversity.RemoteClique, []metric.Vector{}, dm, 3); got != nil {
		t.Errorf("SolveMatrix on empty input = %v, want nil", got)
	}
	for _, fn := range []func(){
		func() { SolveMatrix(diversity.RemoteClique, pts, dm, 0) },
		func() { SolveMatrix(diversity.RemoteClique, pts[:5], dm, 2) },
		func() { SolveMatrix(diversity.RemoteEdge, pts, nil, 2) },
		func() { MaxDispersionPairsMatrix(pts[:5], dm, 2) },
		func() { LocalSearchCliqueMatrix(pts[:5], dm, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// FuzzMaxDispersionPairsMatrixEquivalence drives both remote-clique
// paths with byte-quantized coordinates (heavy exact ties and
// duplicates) and arbitrary k, mirroring FuzzGMMFastEquivalence in
// internal/coreset.
func FuzzMaxDispersionPairsMatrixEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 0, 0, 9, 9}, uint8(3), uint8(2))
	f.Add([]byte{5, 5, 5, 5, 1, 9}, uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, dimRaw uint8) {
		dim := 1 + int(dimRaw)%4
		var pts []metric.Vector
		for i := 0; i+dim <= len(data); i += dim {
			v := make(metric.Vector, dim)
			for j := 0; j < dim; j++ {
				v[j] = float64(data[i+j])
			}
			pts = append(pts, v)
		}
		if len(pts) == 0 {
			return
		}
		k := 1 + int(kRaw)%8
		forceAutoMatrix(t, true)
		fast := MaxDispersionPairs(pts, k, metric.Euclidean)
		slow := MaxDispersionPairs(pts, k, metric.Distance[metric.Vector](genericEuclid))
		sameSolution(t, "MaxDispersionPairs", fast, slow)
		fastLS := LocalSearchClique(pts, k, 4, metric.Euclidean)
		slowLS := LocalSearchClique(pts, k, 4, metric.Distance[metric.Vector](genericEuclid))
		sameSolution(t, "LocalSearchClique", fastLS, slowLS)
	})
}
