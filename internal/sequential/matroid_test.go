package sequential

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"divmax/internal/diversity"
	"divmax/internal/metric"
)

func groupedPoints(rng *rand.Rand, n, groups int) []Grouped[metric.Vector] {
	pts := make([]Grouped[metric.Vector], n)
	for i := range pts {
		pts[i] = Grouped[metric.Vector]{
			Point: metric.Vector{rng.Float64() * 10, rng.Float64() * 10},
			Group: rng.Intn(groups),
		}
	}
	return pts
}

// bruteMatroidClique enumerates feasible k-subsets exactly. Tests only.
func bruteMatroidClique(pts []Grouped[metric.Vector], limits []int, k int) float64 {
	n := len(pts)
	best := math.Inf(-1)
	idx := make([]int, 0, k)
	used := make([]int, len(limits))
	var recur func(next int)
	recur = func(next int) {
		if len(idx) == k {
			var sum float64
			for a := 0; a < k; a++ {
				for b := a + 1; b < k; b++ {
					sum += metric.Euclidean(pts[idx[a]].Point, pts[idx[b]].Point)
				}
			}
			if sum > best {
				best = sum
			}
			return
		}
		if n-next < k-len(idx) {
			return
		}
		for j := next; j < n; j++ {
			g := pts[j].Group
			if used[g] >= limits[g] {
				continue
			}
			used[g]++
			idx = append(idx, j)
			recur(j + 1)
			idx = idx[:len(idx)-1]
			used[g]--
		}
	}
	recur(0)
	return best
}

func TestMatroidDispersionFeasibility(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := 2 + rng.Intn(3)
		pts := groupedPoints(rng, 20+rng.Intn(30), groups)
		limits := make([]int, groups)
		for g := range limits {
			limits[g] = 1 + rng.Intn(3)
		}
		k := 2 + rng.Intn(4)
		sol, err := MaxDispersionPartitionMatroid(pts, limits, k, metric.Euclidean)
		if err != nil {
			// Legitimate only when capacity < k.
			capacity := 0
			counts := make([]int, groups)
			for _, gp := range pts {
				counts[gp.Group]++
			}
			for g := range limits {
				c := limits[g]
				if counts[g] < c {
					c = counts[g]
				}
				capacity += c
			}
			return capacity < k
		}
		if len(sol) != k {
			t.Logf("size %d, want %d (seed %d)", len(sol), k, seed)
			return false
		}
		// Verify the limits: count selected points per group by matching
		// coordinates (points are continuous, collisions negligible).
		usedPerGroup := make([]int, groups)
		for _, q := range sol {
			for _, gp := range pts {
				if metric.Euclidean(q, gp.Point) == 0 {
					usedPerGroup[gp.Group]++
					break
				}
			}
		}
		for g, u := range usedPerGroup {
			if u > limits[g] {
				t.Logf("group %d used %d > limit %d (seed %d)", g, u, limits[g], seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMatroidDispersionQuality(t *testing.T) {
	// Local search is a constant-factor approximation; check ≥ opt/2
	// against brute force on small instances.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := 2 + rng.Intn(2)
		pts := groupedPoints(rng, 8+rng.Intn(5), groups)
		limits := make([]int, groups)
		for g := range limits {
			limits[g] = 1 + rng.Intn(3)
		}
		k := 2 + rng.Intn(2)
		sol, err := MaxDispersionPartitionMatroid(pts, limits, k, metric.Euclidean)
		if err != nil {
			return true
		}
		got := evalOf(diversity.RemoteClique, sol)
		opt := bruteMatroidClique(pts, limits, k)
		return got >= opt/2-1e-9 && got <= opt+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatroidDispersionRespectsTightLimits(t *testing.T) {
	// Two groups, limit 1 each, k=2: the solution must take one per
	// group, even when the two farthest points share a group.
	pts := []Grouped[metric.Vector]{
		{Point: metric.Vector{0, 0}, Group: 0},
		{Point: metric.Vector{100, 0}, Group: 0}, // farthest pair is in group 0
		{Point: metric.Vector{50, 40}, Group: 1},
	}
	sol, err := MaxDispersionPartitionMatroid(pts, []int{1, 1}, 2, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	groupsSeen := map[int]int{}
	for _, q := range sol {
		for _, gp := range pts {
			if metric.Euclidean(q, gp.Point) == 0 {
				groupsSeen[gp.Group]++
			}
		}
	}
	if groupsSeen[0] != 1 || groupsSeen[1] != 1 {
		t.Fatalf("group usage %v, want one from each", groupsSeen)
	}
}

func TestMatroidDispersionErrors(t *testing.T) {
	pts := []Grouped[metric.Vector]{{Point: metric.Vector{0}, Group: 0}}
	if _, err := MaxDispersionPartitionMatroid(pts, []int{1}, 0, metric.Euclidean); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := MaxDispersionPartitionMatroid(pts, []int{1}, 2, metric.Euclidean); err == nil {
		t.Error("infeasible k: expected error")
	}
	if _, err := MaxDispersionPartitionMatroid(pts, []int{-1}, 1, metric.Euclidean); err == nil {
		t.Error("negative limit: expected error")
	}
	bad := []Grouped[metric.Vector]{{Point: metric.Vector{0}, Group: 5}}
	if _, err := MaxDispersionPartitionMatroid(bad, []int{1}, 1, metric.Euclidean); err == nil {
		t.Error("out-of-range group: expected error")
	}
}

func TestMatroidDispersionUnlimitedMatchesUnconstrained(t *testing.T) {
	// One group with limit ≥ k: the constraint is vacuous; quality should
	// be within the unconstrained local-search neighbourhood.
	rng := rand.New(rand.NewSource(11))
	raw := randomVectors(rng, 16, 2)
	pts := make([]Grouped[metric.Vector], len(raw))
	for i, p := range raw {
		pts[i] = Grouped[metric.Vector]{Point: p, Group: 0}
	}
	k := 4
	sol, err := MaxDispersionPartitionMatroid(pts, []int{k}, k, metric.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	got := evalOf(diversity.RemoteClique, sol)
	free := evalOf(diversity.RemoteClique, LocalSearchClique(raw, k, 0, metric.Euclidean))
	if got < free-1e-9 {
		t.Fatalf("vacuous constraint lost quality: %v < %v", got, free)
	}
}
