package sequential

import (
	"math/rand"
	"sync"
	"testing"

	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// forceMatrixBudget pins the matrix/tiled mode boundary for a test, so
// tiled mode engages on inputs small enough to cross-check against the
// generic path.
func forceMatrixBudget(t testing.TB, b int64) {
	t.Helper()
	orig := MatrixBudget
	MatrixBudget = b
	t.Cleanup(func() { MatrixBudget = orig })
}

// forceTileBudget shrinks the worker tile so small inputs stream
// through many row-blocks, exercising the block boundaries.
func forceTileBudget(t testing.TB, b int64) {
	t.Helper()
	orig := tileBudgetBytes
	tileBudgetBytes = b
	t.Cleanup(func() { tileBudgetBytes = orig })
}

// forceShardMinima drops the per-shard scan minima to 1 so multi-worker
// sharding actually engages on test-sized inputs.
func forceShardMinima(t testing.TB) {
	t.Helper()
	origScan, origSweep, origChunk := minScanRows, minSweepCols, minChunkRows
	minScanRows, minSweepCols, minChunkRows = 1, 1, 1
	t.Cleanup(func() { minScanRows, minSweepCols, minChunkRows = origScan, origSweep, origChunk })
}

// engineModes builds the engines an input can solve through: the
// materialized matrix and — with the budget forced below 8·n² — the
// tiled mode, each at several worker counts including the forced
// 1-worker path.
func engineModes(t *testing.T, pts []metric.Vector) map[string]*Engine {
	t.Helper()
	out := make(map[string]*Engine)
	for _, w := range []int{1, 2, 3, 7} {
		if e := BuildEngine(pts, metric.Euclidean, w); e != nil {
			if e.Tiled() {
				t.Fatalf("BuildEngine built tiled under the default budget for n=%d", len(pts))
			}
			out["matrix/w"+string(rune('0'+w))] = e
		}
	}
	orig := MatrixBudget
	MatrixBudget = 8 // below any 2-point matrix
	defer func() { MatrixBudget = orig }()
	for _, w := range []int{1, 2, 3, 7} {
		if e := BuildEngine(pts, metric.Euclidean, w); e != nil {
			if !e.Tiled() {
				t.Fatalf("BuildEngine built a matrix over the forced budget for n=%d", len(pts))
			}
			out["tiled/w"+string(rune('0'+w))] = e
		}
	}
	return out
}

// TestEngineDispatchAndModes pins the build conditions: Euclidean over
// Vector builds, wrappers/other metrics/ragged/singleton inputs do not,
// and the budget — not a point count — selects matrix versus tiled.
func TestEngineDispatchAndModes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomVectors(rng, 50, 3)
	e := BuildEngine(pts, metric.Euclidean, 0)
	if e == nil || e.Tiled() || e.Len() != 50 || e.Matrix() == nil || e.MatrixBytes() != 50*50*8 {
		t.Fatalf("BuildEngine on Euclidean/Vector = %+v", e)
	}
	if e.Workers() < 1 {
		t.Fatal("engine resolved a non-positive worker count")
	}
	if BuildEngine(pts, metric.Distance[metric.Vector](genericEuclid), 0) != nil {
		t.Fatal("BuildEngine accepted a wrapper distance")
	}
	if BuildEngine(pts, metric.Manhattan, 0) != nil {
		t.Fatal("BuildEngine accepted Manhattan")
	}
	if BuildEngine([]metric.Vector{{1, 2}, {3}}, metric.Euclidean, 0) != nil {
		t.Fatal("BuildEngine accepted ragged input")
	}
	if BuildEngine(pts[:1], metric.Euclidean, 0) != nil {
		t.Fatal("BuildEngine accepted a singleton")
	}
	forceMatrixBudget(t, 50*50*8)
	if e := BuildEngine(pts, metric.Euclidean, 0); e == nil || e.Tiled() {
		t.Fatal("BuildEngine went tiled with the matrix exactly at budget")
	}
	forceMatrixBudget(t, 50*50*8-1)
	e = BuildEngine(pts, metric.Euclidean, 0)
	if e == nil || !e.Tiled() || e.Matrix() != nil || e.MatrixBytes() != 0 {
		t.Fatalf("BuildEngine one byte over budget = %+v, want tiled", e)
	}
	if w2 := e.WithWorkers(5); w2.Workers() != 5 || w2.Matrix() != e.Matrix() || w2.Len() != e.Len() {
		t.Fatal("WithWorkers did not share the underlying engine state")
	}
	forceAutoMatrix(t, false)
	if AutoEngine(pts, metric.Euclidean, 0) != nil {
		t.Fatal("AutoEngine built despite the dispatch gate being off")
	}
	forceAutoMatrix(t, true)
	if AutoEngine(pts, metric.Euclidean, 0) == nil {
		t.Fatal("AutoEngine did not build with the dispatch gate on")
	}
}

// TestMaxDispersionPairsEngineMatchesGeneric is the tentpole
// equivalence test of the sharded farthest-partner pass: across seeds,
// dimensions, sizes, k parities, worker counts (including the forced
// 1-worker path), and both engine modes — with tiles forced down to a
// few rows so tiled runs cross block boundaries — the engine returns
// solutions bit-identical to the generic callback scan, including on
// tie-heavy inputs.
func TestMaxDispersionPairsEngineMatchesGeneric(t *testing.T) {
	forceShardMinima(t)
	forceTileBudget(t, 8*7) // ≲7-entry tiles: every n > 7 streams multiple blocks
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, dim := range []int{1, 2, 3, 4, 8} {
			for _, n := range []int{2, 3, 7, 60, 150} {
				pts := testVectors(rng, seed, n, dim)
				k := 1 + rng.Intn(n+3)
				want := MaxDispersionPairs(pts, k, metric.Distance[metric.Vector](genericEuclid))
				for mode, e := range engineModes(t, pts) {
					got := MaxDispersionPairsEngine(pts, e, k)
					sameSolution(t, "MaxDispersionPairsEngine/"+mode, got, want)
				}
			}
		}
	}
}

// TestLocalSearchCliqueEngineMatchesGeneric: every sharded sweep must
// apply the exchange the sequential scan would, so final solutions
// agree bit for bit across sweep budgets, worker counts, and modes.
func TestLocalSearchCliqueEngineMatchesGeneric(t *testing.T) {
	forceShardMinima(t)
	forceTileBudget(t, 8*5)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range []int{2, 9, 40, 120} {
			pts := testVectors(rng, seed, n, 1+int(seed%4))
			k := 1 + rng.Intn(n+2)
			for _, sweeps := range []int{0, 1, 5} {
				want := LocalSearchClique(pts, k, sweeps, metric.Distance[metric.Vector](genericEuclid))
				for mode, e := range engineModes(t, pts) {
					got := LocalSearchCliqueEngine(pts, e, k, sweeps)
					sameSolution(t, "LocalSearchCliqueEngine/"+mode, got, want)
				}
			}
		}
	}
}

// TestSolveEngineMatchesSolve: SolveEngine must agree with Solve's own
// fast path for every measure in both modes — the contract the divmaxd
// query cache relies on when it retains an engine across queries.
func TestSolveEngineMatchesSolve(t *testing.T) {
	forceAutoMatrix(t, true)
	forceShardMinima(t)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(90)
		pts := testVectors(rng, seed, n, 2+int(seed%3))
		k := 1 + rng.Intn(12)
		for _, m := range diversity.Measures {
			direct := Solve(m, pts, k, metric.Euclidean)
			for mode, e := range engineModes(t, pts) {
				got := SolveEngine(m, pts, e, k)
				sameSolution(t, "SolveEngine/"+m.String()+"/"+mode, got, direct)
			}
		}
	}
}

// TestMatroidEngineMatchesGeneric: the engine-indexed matroid solver —
// the third index-based consumer — must select bit-identically to the
// callback path under every mode and worker count, with the partition
// limits still respected.
func TestMatroidEngineMatchesGeneric(t *testing.T) {
	forceShardMinima(t)
	forceTileBudget(t, 8*6)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		groups := 2 + rng.Intn(3)
		n := 15 + rng.Intn(60)
		pts := make([]Grouped[metric.Vector], n)
		raw := testVectors(rng, seed, n, 1+int(seed%3))
		for i := range pts {
			pts[i] = Grouped[metric.Vector]{Point: raw[i], Group: rng.Intn(groups)}
		}
		limits := make([]int, groups)
		for g := range limits {
			limits[g] = 1 + rng.Intn(4)
		}
		k := 2 + rng.Intn(4)
		forceAutoMatrix(t, false)
		want, wantErr := MaxDispersionPartitionMatroid(pts, limits, k, metric.Euclidean)
		forceAutoMatrix(t, true)
		for _, budget := range []int64{MatrixBudget, 8} {
			forceMatrixBudget(t, budget)
			got, gotErr := MaxDispersionPartitionMatroid(pts, limits, k, metric.Euclidean)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("seed=%d budget=%d: engine err %v, generic err %v", seed, budget, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			sameSolution(t, "MaxDispersionPartitionMatroid", got, want)
		}
	}
}

// TestEngineTiledLargeUnion is the acceptance gate for the lifted cap:
// a 16384-point union — 2 GiB as a full matrix, far past the 128 MiB
// budget — must build a tiled engine (no n² buffer), solve
// remote-clique through it with odd k (covering the distance-sum tail),
// and agree bit for bit with the generic callback path. Under the race
// detector the union shrinks to 6000 points — still past the pre-engine
// 4096 cap and still tiled — to keep the instrumented O(n²) pass fast.
func TestEngineTiledLargeUnion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second O(n²) pass")
	}
	n, k := 16384, 9
	if raceEnabled {
		n = 6000
	}
	rng := rand.New(rand.NewSource(42))
	pts := randomVectors(rng, n, 2)
	e := BuildEngine(pts, metric.Euclidean, 2)
	if e == nil {
		t.Fatal("BuildEngine rejected the union")
	}
	if !e.Tiled() || e.Matrix() != nil || e.MatrixBytes() != 0 {
		t.Fatalf("16384-point engine is not tiled (matrix bytes %d)", e.MatrixBytes())
	}
	got := MaxDispersionPairsEngine(pts, e, k)
	want := MaxDispersionPairs(pts, k, metric.Distance[metric.Vector](genericEuclid))
	sameSolution(t, "MaxDispersionPairsEngine/16384", got, want)
}

// TestConcurrentEngineSolves hammers one shared engine per mode with
// concurrent sharded solves — the -race CI job turns this into a data
// race detector for the engine's immutability contract (all solver
// scratch must be per call).
func TestConcurrentEngineSolves(t *testing.T) {
	forceShardMinima(t)
	forceTileBudget(t, 8*16)
	rng := rand.New(rand.NewSource(9))
	pts := randomVectors(rng, 400, 8)
	matrixEng := BuildEngine(pts, metric.Euclidean, 4)
	forceMatrixBudget(t, 8)
	tiledEng := BuildEngine(pts, metric.Euclidean, 4)
	if matrixEng == nil || matrixEng.Tiled() || tiledEng == nil || !tiledEng.Tiled() {
		t.Fatal("engine modes not built as expected")
	}
	want := MaxDispersionPairsEngine(pts, matrixEng, 7)
	wantLS := LocalSearchCliqueEngine(pts, matrixEng, 5, 4)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := matrixEng
			if g%2 == 1 {
				e = tiledEng
			}
			same := func(a, b []metric.Vector) bool {
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					for j := range a[i] {
						if a[i][j] != b[i][j] {
							return false
						}
					}
				}
				return true
			}
			for r := 0; r < 3; r++ {
				if !same(MaxDispersionPairsEngine(pts, e, 7), want) ||
					!same(LocalSearchCliqueEngine(pts, e, 5, 4), wantLS) {
					t.Errorf("goroutine %d rep %d: concurrent solve diverged", g, r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEngineValidation pins the panic contract of the engine entry
// points (mirroring TestSolveMatrixValidation).
func TestEngineValidation(t *testing.T) {
	pts := randomVectors(rand.New(rand.NewSource(2)), 10, 2)
	e := BuildEngine(pts, metric.Euclidean, 1)
	if got := SolveEngine(diversity.RemoteClique, []metric.Vector{}, e, 3); got != nil {
		t.Errorf("SolveEngine on empty input = %v, want nil", got)
	}
	for _, fn := range []func(){
		func() { SolveEngine(diversity.RemoteClique, pts, e, 0) },
		func() { SolveEngine(diversity.RemoteClique, pts[:5], e, 2) },
		func() { SolveEngine(diversity.RemoteEdge, pts, nil, 2) },
		func() { MaxDispersionPairsEngine(pts[:5], e, 2) },
		func() { MaxDispersionPairsEngine(pts, e, 0) },
		func() { LocalSearchCliqueEngine(pts[:5], e, 2, 0) },
		func() { LocalSearchCliqueEngine(pts, e, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	// k ≥ n returns the whole input, as LocalSearchClique does.
	if got := LocalSearchCliqueEngine(pts, e, 12, 3); len(got) != len(pts) {
		t.Errorf("LocalSearchCliqueEngine k>n returned %d points", len(got))
	}
}

// FuzzEngineParallelTiledEquivalence drives the sharded and tiled scans
// with byte-quantized coordinates (heavy exact ties and duplicates) and
// arbitrary k and worker counts against the generic callback path.
func FuzzEngineParallelTiledEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 0, 0, 9, 9}, uint8(3), uint8(2), uint8(3))
	f.Add([]byte{5, 5, 5, 5, 1, 9, 7, 7, 7, 7, 2, 2}, uint8(5), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, dimRaw, wRaw uint8) {
		dim := 1 + int(dimRaw)%4
		var pts []metric.Vector
		for i := 0; i+dim <= len(data); i += dim {
			v := make(metric.Vector, dim)
			for j := 0; j < dim; j++ {
				v[j] = float64(data[i+j])
			}
			pts = append(pts, v)
		}
		if len(pts) < 2 {
			return
		}
		k := 1 + int(kRaw)%8
		workers := 1 + int(wRaw)%5
		forceShardMinima(t)
		forceTileBudget(t, 8*4)
		want := MaxDispersionPairs(pts, k, metric.Distance[metric.Vector](genericEuclid))
		wantLS := LocalSearchClique(pts, k, 4, metric.Distance[metric.Vector](genericEuclid))
		for _, budget := range []int64{128 << 20, 8} {
			forceMatrixBudget(t, budget)
			e := BuildEngine(pts, metric.Euclidean, workers)
			if e == nil {
				t.Fatal("BuildEngine rejected fuzz input")
			}
			sameSolution(t, "fuzz MaxDispersionPairsEngine", MaxDispersionPairsEngine(pts, e, k), want)
			if k < len(pts) {
				sameSolution(t, "fuzz LocalSearchCliqueEngine", LocalSearchCliqueEngine(pts, e, k, 4), wantLS)
			}
		}
	})
}

// TestSolveDispatchesTiledPastBudget pins that the auto path no longer
// bails to callbacks past the budget: with the gate on and the budget
// forced below the input, MaxDispersionPairs must still match the
// generic scan (it is now running tiled underneath).
func TestSolveDispatchesTiledPastBudget(t *testing.T) {
	forceAutoMatrix(t, true)
	forceMatrixBudget(t, 8)
	forceShardMinima(t)
	rng := rand.New(rand.NewSource(17))
	pts := randomVectors(rng, 200, 3)
	for _, k := range []int{4, 5} {
		fast := MaxDispersionPairs(pts, k, metric.Euclidean)
		slow := MaxDispersionPairs(pts, k, metric.Distance[metric.Vector](genericEuclid))
		sameSolution(t, "MaxDispersionPairs/tiled-auto", fast, slow)
	}
	fastLS := LocalSearchClique(pts, 6, 5, metric.Euclidean)
	slowLS := LocalSearchClique(pts, 6, 5, metric.Distance[metric.Vector](genericEuclid))
	sameSolution(t, "LocalSearchClique/tiled-auto", fastLS, slowLS)
}

// TestGMMEngineTiledMatchesMatrix: the GMM branch must select the same
// centers whether it reads matrix rows or computes them on demand.
func TestGMMEngineTiledMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	orig := MatrixBudget
	defer func() { MatrixBudget = orig }()
	for _, n := range []int{5, 80, 200} {
		pts := testVectors(rng, int64(n), n, 4)
		k := 1 + rng.Intn(10)
		MatrixBudget = orig
		matrixEng := BuildEngine(pts, metric.Euclidean, 2)
		MatrixBudget = 8
		tiledEng := BuildEngine(pts, metric.Euclidean, 2)
		for _, m := range []diversity.Measure{diversity.RemoteEdge, diversity.RemoteTree} {
			a := SolveEngine(m, pts, matrixEng, k)
			b := SolveEngine(m, pts, tiledEng, k)
			sameSolution(t, "gmmEngine/"+m.String(), a, b)
		}
	}
}
