package sequential

import (
	"math"
	"math/rand"
	"testing"

	"divmax/internal/metric"
)

// appendEngine builds the engine the incremental path produces for a
// prefix/suffix split: BuildEngine over the prefix (nil below 2 points,
// in which case the build starts from scratch over everything — exactly
// what the divmaxd cache does when there is nothing to extend),
// followed by Fork + Append of the suffix.
func appendEngine(t *testing.T, all []metric.Vector, cut, workers int) *Engine {
	t.Helper()
	base := BuildEngine(all[:cut], metric.Euclidean, workers)
	if base == nil {
		return BuildEngine(all, metric.Euclidean, workers)
	}
	e := base.Fork()
	if !e.Append(all[cut:]) {
		t.Fatalf("Append rejected a %d-point suffix of dimension %d", len(all)-cut, len(all[0]))
	}
	return e
}

// sameEngineCells asserts two engines agree on mode, size, and — in
// matrix mode — every matrix cell, bit for bit.
func sameEngineCells(t *testing.T, label string, got, want *Engine) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: engine nil-ness %v vs %v", label, got == nil, want == nil)
	}
	if got == nil {
		return
	}
	if got.Len() != want.Len() || got.Tiled() != want.Tiled() {
		t.Fatalf("%s: engine (n=%d tiled=%v) vs (n=%d tiled=%v)",
			label, got.Len(), got.Tiled(), want.Len(), want.Tiled())
	}
	if got.Tiled() {
		return
	}
	gm, wm := got.Matrix(), want.Matrix()
	for i := 0; i < got.Len(); i++ {
		for j := 0; j < got.Len(); j++ {
			if math.Float64bits(gm.SqAt(i, j)) != math.Float64bits(wm.SqAt(i, j)) {
				t.Fatalf("%s: matrix cell (%d,%d) = %v, want %v", label, i, j, gm.SqAt(i, j), wm.SqAt(i, j))
			}
		}
	}
}

// TestEngineAppendMatchesBuild is the append-equivalence contract the
// divmaxd delta patch rests on: for random prefix/suffix splits —
// including empty prefixes, empty suffixes, and chains of several
// appends — BuildEngine(prefix)+Append(suffix) must agree with
// BuildEngine(all) entry for entry in matrix mode and solve
// bit-identically for every engine consumer (MaxDispersionPairs,
// LocalSearchClique, the partition-matroid solver) across worker counts
// and both engine modes.
func TestEngineAppendMatchesBuild(t *testing.T) {
	forceShardMinima(t)
	forceTileBudget(t, 8*7)
	for _, budget := range []int64{128 << 20, 8} { // matrix mode / forced tiled
		forceMatrixBudget(t, budget)
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(100 + seed))
			for _, dim := range []int{1, 2, 3, 8} {
				for _, n := range []int{0, 1, 2, 3, 8, 60} {
					all := testVectors(rng, seed, n, dim)
					for _, cut := range []int{0, 1, n / 2, n - 1, n} {
						if cut < 0 || cut > n {
							continue
						}
						for _, workers := range []int{1, 3} {
							want := BuildEngine(all, metric.Euclidean, workers)
							got := appendEngine(t, all, cut, workers)
							label := "append/" + string(rune('0'+dim)) + "d"
							sameEngineCells(t, label, got, want)
							if want == nil {
								continue
							}
							k := 1 + rng.Intn(n)
							sameSolution(t, label+"/pairs",
								MaxDispersionPairsEngine(all, got, k),
								MaxDispersionPairsEngine(all, want, k))
							sameSolution(t, label+"/clique",
								LocalSearchCliqueEngine(all, got, k, 0),
								LocalSearchCliqueEngine(all, want, k, 0))
						}
					}
				}
			}
		}
	}
}

// TestEngineAppendChained: repeated Fork+Append steps — the cache's
// steady-state patch chain, reusing one buffer's spare capacity — must
// stay cell-identical to a from-scratch build after every step. Dims 32
// and 128 run the append stripes through the blocked kernel tier, whose
// per-cell values are position-independent, so the bitwise comparison
// against a from-scratch build holds there exactly as below the
// threshold.
func TestEngineAppendChained(t *testing.T) {
	forceShardMinima(t)
	rng := rand.New(rand.NewSource(9))
	for _, dim := range []int{2, 8, 32, 128} {
		all := testVectors(rng, int64(dim), 90, dim)
		e := BuildEngine(all[:4], metric.Euclidean, 2)
		grown := 4
		for _, step := range []int{1, 1, 2, 7, 30, 0, 44} {
			e = e.Fork()
			if !e.Append(all[grown : grown+step]) {
				t.Fatalf("chained Append of %d points failed", step)
			}
			grown += step
			want := BuildEngine(all[:grown], metric.Euclidean, 2)
			sameEngineCells(t, "chain", e, want)
			sameSolution(t, "chain/pairs",
				MaxDispersionPairsEngine(all[:grown], e, 5),
				MaxDispersionPairsEngine(all[:grown], want, 5))
		}
	}
}

// TestEngineAppendCrossesBudget: an append that pushes 8·n² past
// MatrixBudget must drop the matrix and cross into tiled mode, exactly
// where BuildEngine over the full set starts tiled — mode and solutions
// agree on both sides of the boundary.
func TestEngineAppendCrossesBudget(t *testing.T) {
	forceShardMinima(t)
	forceMatrixBudget(t, 40*40*8) // matrix up to 40 points
	rng := rand.New(rand.NewSource(17))
	all := testVectors(rng, 3, 64, 3)
	e := BuildEngine(all[:30], metric.Euclidean, 2)
	if e.Tiled() {
		t.Fatal("prefix engine should be matrix-mode under the forced budget")
	}
	e = e.Fork()
	if !e.Append(all[30:]) {
		t.Fatal("boundary-crossing Append failed")
	}
	want := BuildEngine(all, metric.Euclidean, 2)
	if !e.Tiled() || !want.Tiled() {
		t.Fatalf("expected both engines tiled past the budget (append=%v build=%v)", e.Tiled(), want.Tiled())
	}
	sameSolution(t, "crossing/pairs",
		MaxDispersionPairsEngine(all, e, 7),
		MaxDispersionPairsEngine(all, want, 7))
	sameSolution(t, "crossing/clique",
		LocalSearchCliqueEngine(all, e, 6, 0),
		LocalSearchCliqueEngine(all, want, 6, 0))
}

// TestMatroidEngineAppendMatchesBuild covers the third engine consumer:
// the partition-matroid solver over an appended engine must select
// exactly what it selects over a from-scratch engine, across worker
// counts and both modes.
func TestMatroidEngineAppendMatchesBuild(t *testing.T) {
	forceShardMinima(t)
	for _, budget := range []int64{128 << 20, 8} {
		forceMatrixBudget(t, budget)
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(40 + seed))
			n := 50
			all := testVectors(rng, seed, n, 2)
			group := make([]int, n)
			for i := range group {
				group[i] = rng.Intn(3)
			}
			limits := []int{3, 3, 3}
			for _, cut := range []int{0, 5, n / 2, n - 1} {
				for _, workers := range []int{1, 4} {
					want := BuildEngine(all, metric.Euclidean, workers)
					got := appendEngine(t, all, cut, workers)
					ws := maxDispersionMatroidEngine(want, group, limits, 6)
					gs := maxDispersionMatroidEngine(got, group, limits, 6)
					if len(ws) != len(gs) {
						t.Fatalf("matroid solution sizes differ: %d vs %d", len(gs), len(ws))
					}
					for i := range ws {
						if ws[i] != gs[i] {
							t.Fatalf("seed=%d cut=%d workers=%d: matroid pick %d = %d, want %d",
								seed, cut, workers, i, gs[i], ws[i])
						}
					}
				}
			}
		}
	}
}

// TestEngineForkIsolation: appending to a fork must leave the original
// engine's view — size, mode, cells, and solutions — untouched while
// solves run on it concurrently.
func TestEngineForkIsolation(t *testing.T) {
	forceShardMinima(t)
	rng := rand.New(rand.NewSource(77))
	all := testVectors(rng, 1, 40, 2)
	e := BuildEngine(all[:25], metric.Euclidean, 2)
	before := MaxDispersionPairsEngine(all[:25], e, 6)
	done := make(chan []metric.Vector, 8)
	for g := 0; g < 4; g++ {
		go func() {
			done <- MaxDispersionPairsEngine(all[:25], e, 6)
		}()
	}
	f := e.Fork()
	if !f.Append(all[25:]) {
		t.Fatal("fork Append failed")
	}
	for g := 0; g < 4; g++ {
		sameSolution(t, "concurrent-with-fork", <-done, before)
	}
	if e.Len() != 25 || f.Len() != 40 {
		t.Fatalf("fork/original lengths %d/%d, want 40/25", f.Len(), e.Len())
	}
	after := MaxDispersionPairsEngine(all[:25], e, 6)
	sameSolution(t, "original-after-fork", after, before)
}

// TestAppendEngineRejects: the gates — engines without a flat store
// (explicit-matrix entry points), dimension mismatches, non-vector
// points — must report false and leave the engine unchanged.
func TestAppendEngineRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	all := testVectors(rng, 1, 10, 2)
	e := BuildEngine(all, metric.Euclidean, 1)
	if e.Append([]metric.Vector{{1, 2, 3}}) {
		t.Fatal("Append accepted a dimension-mismatched row")
	}
	if e.Len() != 10 {
		t.Fatalf("rejected Append changed the engine length to %d", e.Len())
	}
	if !e.Append(nil) {
		t.Fatal("empty Append must be a no-op success")
	}
	if AppendEngine(nil, all) {
		t.Fatal("AppendEngine accepted a nil engine")
	}
	type alias struct{ x float64 }
	if !AppendEngine(e, []alias{}) {
		t.Fatal("AppendEngine must accept an empty append of any type")
	}
	if AppendEngine(e, []alias{{1}}) {
		t.Fatal("AppendEngine accepted non-vector points")
	}
	me := engineFromMatrix(metric.NewDistMatrix(mustFlat(all), 1), 1)
	if me.Append(all[:1]) {
		t.Fatal("Append accepted an engine without a flat store")
	}
}

// mustFlat builds a flat store from vectors, failing the test on ragged
// input.
func mustFlat(vs []metric.Vector) *metric.Points {
	p, ok := metric.FlattenVectors(vs)
	if !ok {
		panic("ragged test vectors")
	}
	return &p
}
