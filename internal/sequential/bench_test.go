package sequential

import (
	"fmt"
	"math/rand"
	"testing"

	"divmax/internal/diversity"
	"divmax/internal/metric"
)

func benchPoints(n int) []metric.Vector {
	rng := rand.New(rand.NewSource(1))
	return randomVectors(rng, n, 3)
}

func BenchmarkSolvePerMeasure(b *testing.B) {
	pts := benchPoints(1024)
	for _, m := range diversity.Measures {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Solve(m, pts, 16, metric.Euclidean)
			}
		})
	}
}

// BenchmarkMaxDispersionPairs exercises the lazy farthest-partner index:
// near-quadratic in n but nearly independent of k.
func BenchmarkMaxDispersionPairs(b *testing.B) {
	for _, n := range []int{512, 2048} {
		for _, k := range []int{8, 64} {
			pts := benchPoints(n)
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					MaxDispersionPairs(pts, k, metric.Euclidean)
				}
			})
		}
	}
}

func BenchmarkLocalSearchClique(b *testing.B) {
	for _, n := range []int{512, 2048} {
		pts := benchPoints(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				LocalSearchClique(pts, 8, 0, metric.Euclidean)
			}
		})
	}
}

func BenchmarkSolveGeneralized(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := randomVectors(rng, 256, 3)
	mult := make([]int, len(pts))
	for i := range mult {
		mult[i] = 1 + rng.Intn(8)
	}
	g := genFromPoints(pts, mult)
	for _, m := range []diversity.Measure{diversity.RemoteClique, diversity.RemoteTree} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SolveGeneralized(m, g, 32, metric.Euclidean)
			}
		})
	}
}
