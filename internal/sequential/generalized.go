package sequential

import (
	"fmt"
	"math"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// SolveGeneralized adapts the sequential solvers to generalized core-sets
// (Fact 2): given T as (point, multiplicity) pairs it returns a coherent
// subset T̂ ⊑ T with expanded size exactly min(k, m(T)), approximately
// maximizing the generalized diversity, where replicas of a point count as
// distinct points at distance 0. The space used is O(s(T)), as Fact 2
// requires: the expansion is never materialized; the algorithms run on
// (pair index, replica count) state.
func SolveGeneralized[P any](m diversity.Measure, g coreset.Generalized[P], k int, d metric.Distance[P]) coreset.Generalized[P] {
	if k < 1 {
		panic(fmt.Sprintf("sequential: SolveGeneralized requires k >= 1, got %d", k))
	}
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	if g.Size() == 0 {
		return nil
	}
	if total := g.ExpandedSize(); k > total {
		k = total
	}
	var taken []int
	if m == diversity.RemoteClique {
		taken = generalizedDispersion(g, k, d)
	} else {
		taken = generalizedGMM(g, k, d)
	}
	out := make(coreset.Generalized[P], 0, len(g))
	for i, t := range taken {
		if t > 0 {
			out = append(out, coreset.Weighted[P]{Point: g[i].Point, Mult: t})
		}
	}
	return out
}

// generalizedGMM runs the farthest-first traversal on the multiset: the
// first replica of a pair behaves like the point itself; additional
// replicas are at distance 0 from it and are only taken when every
// distinct point is exhausted or they are the farthest option (which
// happens exactly when k exceeds the number of distinct points).
// taken[i] counts replicas of pair i selected.
func generalizedGMM[P any](g coreset.Generalized[P], k int, d metric.Distance[P]) []int {
	s := g.Size()
	taken := make([]int, s)
	// minDist[i]: distance of pair i's point to the selected set, where a
	// selected replica of i itself makes it 0.
	minDist := make([]float64, s)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	cur := 0 // deterministic start, as in coreset.GMM
	selected := 0
	for selected < k {
		taken[cur]++
		selected++
		if taken[cur] == 1 {
			// A new distinct point joined: relax distances.
			for i := 0; i < s; i++ {
				var dist float64
				if i != cur {
					dist = d(g[cur].Point, g[i].Point)
				}
				if dist < minDist[i] {
					minDist[i] = dist
				}
			}
		}
		// Next: the pair with spare multiplicity at maximum distance from
		// the selected multiset. A pair already selected has distance 0
		// but may still carry replicas.
		next, nextDist := -1, math.Inf(-1)
		for i := 0; i < s; i++ {
			if taken[i] >= g[i].Mult {
				continue
			}
			dist := minDist[i]
			if taken[i] > 0 {
				dist = 0
			}
			if dist > nextDist {
				next, nextDist = i, dist
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	return taken
}

// generalizedDispersion is MaxDispersionPairs on the multiset: the
// farthest pair of replicas is always a pair of distinct points (replicas
// of one point are at distance 0), so it repeatedly takes the farthest
// pair of pairs with spare multiplicity. When only one distinct point has
// spare replicas (or for the odd final slot) it falls back to the replica
// maximizing the distance sum to the selection.
func generalizedDispersion[P any](g coreset.Generalized[P], k int, d metric.Distance[P]) []int {
	s := g.Size()
	taken := make([]int, s)
	selected := 0
	spare := func(i int) int { return g[i].Mult - taken[i] }
	for selected+2 <= k {
		bi, bj, best := -1, -1, math.Inf(-1)
		for i := 0; i < s; i++ {
			if spare(i) == 0 {
				continue
			}
			// A pair of replicas of the same point has distance 0; it is a
			// candidate only when some point has ≥ 2 spare replicas.
			if spare(i) >= 2 && 0 > best {
				bi, bj, best = i, i, 0
			}
			for j := i + 1; j < s; j++ {
				if spare(j) == 0 {
					continue
				}
				if dist := d(g[i].Point, g[j].Point); dist > best {
					bi, bj, best = i, j, dist
				}
			}
		}
		if bi < 0 {
			break
		}
		taken[bi]++
		taken[bj]++
		selected += 2
	}
	for selected < k {
		// Final odd slot (or exhausted pair phase): replica with the best
		// distance sum to the selected multiset.
		bi, best := -1, math.Inf(-1)
		for i := 0; i < s; i++ {
			if spare(i) == 0 {
				continue
			}
			var sum float64
			for j := 0; j < s; j++ {
				if taken[j] > 0 && j != i {
					sum += float64(taken[j]) * d(g[i].Point, g[j].Point)
				}
			}
			if sum > best {
				bi, best = i, sum
			}
		}
		if bi < 0 {
			break
		}
		taken[bi]++
		selected++
	}
	return taken
}
