// Package sequential implements the linear-space sequential
// α-approximation algorithms of Table 1, which the streaming and
// MapReduce drivers run on the extracted core-sets to produce the final
// solution (the "algorithm A" of Theorems 3 and 6):
//
//   - remote-clique: the Hassin–Rubinstein–Tamir max-dispersion heuristic
//     (repeatedly take the farthest remaining pair), α = 2;
//   - every other measure: the Gonzalez farthest-first traversal (GMM),
//     whose greedy anticover yields α = 2 for remote-edge and remote-star,
//     3 for remote-bipartition and remote-cycle, and 4 for remote-tree
//     (Chandra–Halldórsson; Halldórsson–Iwano–Katoh–Tokuyama).
//
// The package also provides multiplicity-aware adaptations for
// generalized core-sets (Fact 2), a local-search improver for
// remote-clique (the ingredient of the AFZ baseline), and exact
// brute-force solvers used by tests and reference computations.
package sequential

import (
	"fmt"
	"math"

	"divmax/internal/coreset"
	"divmax/internal/diversity"
	"divmax/internal/metric"
)

// Solve returns an α-approximate solution with min(k, len(pts)) points
// for measure m, where α is m.SequentialAlpha(). It panics if k < 1.
//
// On the Euclidean-over-Vector fast path both branches avoid per-pair
// distance callbacks: the remote-clique branch dispatches (inside
// MaxDispersionPairs) to the matrix-indexed solver of matrix.go, and the
// GMM branch dispatches (inside coreset.GMM) to the flat squared-distance
// kernel — the traversal is O(n·k) distance evaluations, so it relaxes
// against flat rows directly rather than paying an O(n²) matrix fill.
// Callers that already hold a DistMatrix (mrdiv.SolveCoresets, the
// divmaxd query cache) use SolveMatrix instead, where the GMM branch
// also runs on matrix rows.
func Solve[P any](m diversity.Measure, pts []P, k int, d metric.Distance[P]) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: Solve requires k >= 1, got %d", k))
	}
	if len(pts) == 0 {
		return nil
	}
	if m == diversity.RemoteClique {
		return MaxDispersionPairs(pts, k, d)
	}
	return coreset.GMM(pts, k, 0, d).Points
}

// MaxDispersionPairs is the Hassin–Rubinstein–Tamir 2-approximation for
// remote-clique: ⌊k/2⌋ times, pick the pair of remaining points at
// maximum distance and add both endpoints; for odd k a final point
// maximizing the distance sum to the chosen set is added.
//
// A lazy farthest-partner index makes the repeated farthest-pair queries
// cheap: one O(n²) pass caches each point's farthest partner; removing
// the two endpoints of a taken pair only invalidates entries that pointed
// at them, which are recomputed on demand. Total time is O(n² + k·n)
// distance evaluations instead of the naive O(k·n²), with O(n) extra
// space — this is the round-2 hot path of every remote-clique pipeline.
//
// When the points are metric.Vector, d is metric.Euclidean, and more
// than one core is available, the O(n²) pass runs sharded across cores
// against the solve engine (engine.go) — a parallel-filled DistMatrix
// within the memory budget, streamed row-block tiles beyond it —
// instead of per-pair callbacks, selecting a bit-identical solution.
func MaxDispersionPairs[P any](pts []P, k int, d metric.Distance[P]) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: MaxDispersionPairs requires k >= 1, got %d", k))
	}
	if e := AutoEngine(pts, d, 0); e != nil {
		return pick(pts, maxDispersionPairsEngine(e, k))
	}
	n := len(pts)
	if k > n {
		k = n
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// farDist[i], farIdx[i]: farthest partner of i over all points
	// (computed once), lazily downgraded to "farthest alive partner" when
	// consulted after removals.
	farDist := make([]float64, n)
	farIdx := make([]int, n)
	for i := range farIdx {
		farIdx[i] = -1
		farDist[i] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := d(pts[i], pts[j])
			if dist > farDist[i] {
				farDist[i], farIdx[i] = dist, j
			}
			if dist > farDist[j] {
				farDist[j], farIdx[j] = dist, i
			}
		}
	}
	recompute := func(i int) {
		farDist[i], farIdx[i] = math.Inf(-1), -1
		for j := 0; j < n; j++ {
			if j == i || !alive[j] {
				continue
			}
			if dist := d(pts[i], pts[j]); dist > farDist[i] {
				farDist[i], farIdx[i] = dist, j
			}
		}
	}
	// farthestAlivePair returns the endpoints of the maximum-distance
	// alive pair, or (-1,-1). Stale cache entries (dead partner) only
	// overestimate, so recomputing the current maximum until its partner
	// is alive yields the true global maximum.
	farthestAlivePair := func() (int, int) {
		for {
			bi := -1
			for i := 0; i < n; i++ {
				if alive[i] && (bi == -1 || farDist[i] > farDist[bi]) {
					bi = i
				}
			}
			if bi == -1 {
				return -1, -1 // no alive points
			}
			if bj := farIdx[bi]; bj >= 0 && alive[bj] {
				return bi, bj
			}
			recompute(bi)
			if farIdx[bi] == -1 {
				return -1, -1 // bi is the only alive point
			}
		}
	}
	out := make([]P, 0, k)
	for len(out)+2 <= k {
		bi, bj := farthestAlivePair()
		if bi == -1 {
			break
		}
		alive[bi], alive[bj] = false, false
		out = append(out, pts[bi], pts[bj])
	}
	if len(out) < k {
		// Odd k (or a single point): add the remaining point with the
		// largest distance sum to the current solution.
		bi, best := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			var sum float64
			for _, q := range out {
				sum += d(pts[i], q)
			}
			if sum > best {
				bi, best = i, sum
			}
		}
		if bi >= 0 {
			alive[bi] = false
			out = append(out, pts[bi])
		}
	}
	return out
}

// LocalSearchClique improves a remote-clique solution by 1-swaps: while
// some exchange of a solution point with an outside point increases the
// sum of pairwise distances, apply the best such exchange. Starting from
// an arbitrary solution this is the core-set construction of the AFZ
// baseline (Aghamolaei, Farhadi, Zarrabi-Zadeh, CCCG'15); its running
// time is superlinear in n, which Table 4 measures. maxSweeps bounds the
// number of swap rounds (≤ 0 means no bound beyond convergence, capped at
// a package-internal safety limit).
//
// When the points are metric.Vector, d is metric.Euclidean, and more
// than one core is available, the contribution and swap scans run
// sharded across cores against the solve engine (engine.go) — a
// parallel-filled DistMatrix within the memory budget, streamed
// row-block tiles beyond it — instead of per-pair callbacks, applying
// bit-identical sweeps.
func LocalSearchClique[P any](pts []P, k int, maxSweeps int, d metric.Distance[P]) []P {
	if k < 1 {
		panic(fmt.Sprintf("sequential: LocalSearchClique requires k >= 1, got %d", k))
	}
	n := len(pts)
	if k >= n {
		// Trivial before any engine is built: the whole input is the
		// solution.
		out := make([]P, n)
		copy(out, pts)
		return out
	}
	if e := AutoEngine(pts, d, 0); e != nil {
		return pick(pts, localSearchCliqueEngine(e, k, maxSweeps))
	}
	const safetyLimit = 1000
	if maxSweeps <= 0 || maxSweeps > safetyLimit {
		maxSweeps = safetyLimit
	}
	// Start from the lexicographic prefix: AFZ's analysis does not need a
	// clever start, and a weak start exhibits the algorithm's true cost.
	inSol := make([]bool, n)
	sol := make([]int, k)
	for i := 0; i < k; i++ {
		inSol[i] = true
		sol[i] = i
	}
	// contrib[i] = Σ_{j∈sol} d(i, j) for every point i.
	contrib := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, j := range sol {
			contrib[i] += d(pts[i], pts[j])
		}
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		bestDelta, bestOut, bestIn := 1e-12, -1, -1
		for si, i := range sol {
			for j := 0; j < n; j++ {
				if inSol[j] {
					continue
				}
				// Swap i out, j in: new sum gains contrib[j]−d(i,j) and
				// loses contrib[i].
				delta := contrib[j] - d(pts[i], pts[j]) - contrib[i]
				if delta > bestDelta {
					bestDelta, bestOut, bestIn = delta, si, j
				}
			}
		}
		if bestOut < 0 {
			break
		}
		oldIdx := sol[bestOut]
		newIdx := bestIn
		inSol[oldIdx], inSol[newIdx] = false, true
		sol[bestOut] = newIdx
		for i := 0; i < n; i++ {
			contrib[i] += d(pts[i], pts[newIdx]) - d(pts[i], pts[oldIdx])
		}
	}
	out := make([]P, k)
	for i, j := range sol {
		out[i] = pts[j]
	}
	return out
}
