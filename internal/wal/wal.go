// Package wal is divmaxd's per-shard durability layer: an append-only
// write-ahead log of ingest/delete records plus an atomically-replaced
// core-set checkpoint, so recovery is checkpoint + log-tail replay
// instead of full-stream replay.
//
// Records are length-prefixed and CRC32C-framed (frame.go); the log is
// split into numbered segment files so compaction can drop whole
// segments once a checkpoint covers them. Open scans the directory,
// truncates a torn or corrupt tail at the first bad frame (keeping
// every record before the damage), and reports the durable end of the
// log so the host knows exactly what to replay.
//
// Ordering contract with the host: Append writes the full frame to the
// segment BEFORE invoking the caller's deliver callback, both under the
// log mutex, and truncates the frame back off if deliver fails. A
// record therefore exists on disk for every message a shard goroutine
// ever folds, and a sequence number acknowledged to a client is never
// ahead of the log. Checkpoints go through a separate file
// (tmp + rename), never take the append mutex, and only advance the
// compaction floor after the rename — a crash mid-checkpoint leaves the
// previous checkpoint valid.
//
// Fsync policy is configurable: SyncAlways fsyncs inside every Append
// (no acknowledged record is ever lost to a power cut), SyncInterval
// (the default) batches fsyncs on a background flusher, SyncOff leaves
// flushing to the OS. All three survive process crashes equally —
// writes are unbuffered — the policy only changes the power-failure
// window.
package wal

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when appended records are fsynced to stable
// storage. The zero value is SyncInterval.
type SyncPolicy int

const (
	// SyncInterval batches fsyncs: a background flusher syncs the
	// active segment every Options.SyncEvery (default 100ms). A process
	// crash loses nothing; a power cut loses at most the last interval.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs inside every Append, before the caller is
	// acknowledged. Slowest, loses nothing even to a power cut.
	SyncAlways
	// SyncOff never fsyncs explicitly; the OS flushes when it pleases.
	// A process crash still loses nothing (writes are unbuffered).
	SyncOff
)

// ParseSyncPolicy maps the -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ErrCrashed is reported by every mutating call after the log has hit
// an unrecoverable write error or an injected crash: the in-memory
// state may be ahead of the disk state, so further appends would tear a
// hole in the replay sequence. The host fails writes closed and leaves
// recovery to the next Open.
var ErrCrashed = errors.New("wal: log crashed, writes disabled")

// Logf is the package's logger; a variable so tests can silence or
// capture it.
var Logf = log.Printf

// Options configures Open.
type Options struct {
	// Dir is the log directory (created if missing). One Log per
	// directory.
	Dir string
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the flusher period under SyncInterval (default
	// 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 4 MiB). Compaction removes sealed segments entirely
	// covered by the checkpoint.
	SegmentBytes int64
	// AppendHook and CheckpointHook are the crash-fault injection
	// points (internal/faults wires them per shard): given the frame
	// size about to be written they return how many bytes to actually
	// write — a value in [0, size) tears the write, persists the torn
	// prefix, and crashes the log (ErrCrashed thereafter); anything
	// else writes normally. nil hooks (production) inject nothing.
	AppendHook     func(seq uint64, size int) int
	CheckpointHook func(size int) int
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// segment is a sealed (no longer written) segment file.
type segment struct {
	path     string
	bytes    int64
	firstSeq uint64 // 0 when the segment holds no records
	lastSeq  uint64
}

// Log is one shard's write-ahead log. Append/WriteCheckpoint/Replay/
// Stats are safe for concurrent use; the single-recoverer calls
// (Checkpoint, RecoveredSeq) read state fixed at Open.
type Log struct {
	opts Options

	mu          sync.Mutex // guards the append path and active-segment fields
	f           *os.File   // active segment, written via WriteAt(size)
	path        string
	size        int64
	segIndex    uint64
	activeFirst uint64 // first seq in the active segment, 0 if none
	sealed      []segment
	nextSeq     uint64
	dirty       bool // unsynced appends (SyncInterval)

	ckptMu sync.Mutex // guards checkpoint file writes against Close

	crashed  atomic.Bool
	bytes    atomic.Int64 // total log bytes across all segments
	segments atomic.Int64
	floor    atomic.Uint64 // first seq NOT covered by the checkpoint
	rotate   atomic.Bool   // force a rotation on the next append

	// State recovered at Open.
	recoveredSeq uint64
	ckptPayload  []byte
	ckptNext     uint64
	ckptOK       bool

	stop      chan struct{}
	flusherWG sync.WaitGroup
	closeOnce sync.Once
}

// Open creates or recovers the log in opts.Dir: segments are scanned in
// order, the first torn or corrupt frame truncates its segment and
// drops every later one (records before the damage all survive), and
// the newest valid checkpoint file is loaded. The returned log is ready
// for appends; RecoveredSeq and Checkpoint describe what to replay.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts}
	l.loadCheckpoint()
	os.Remove(filepath.Join(opts.Dir, ckptTmpName)) // stale tmp from a crashed checkpoint

	indices, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	var lastSeq uint64
	damagedAt := -1
	for i, idx := range indices {
		path := segmentPath(opts.Dir, idx)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		want := uint64(0)
		if lastSeq != 0 {
			want = lastSeq + 1
		}
		valid, first, last, damaged, _ := walkFrames(data, want, nil)
		if damaged {
			if err := os.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			Logf("wal: %s: torn or corrupt frame at offset %d: truncated (%d later segment(s) dropped)",
				path, valid, len(indices)-i-1)
			for _, late := range indices[i+1:] {
				os.Remove(segmentPath(opts.Dir, late))
			}
			damagedAt = i
			data = data[:valid]
		}
		if last != 0 {
			lastSeq = last
		}
		l.sealed = append(l.sealed, segment{path: path, bytes: int64(len(data)), firstSeq: first, lastSeq: last})
		l.segIndex = idx
		if damagedAt >= 0 {
			break
		}
	}

	// The final scanned segment becomes the active one.
	if n := len(l.sealed); n > 0 {
		active := l.sealed[n-1]
		l.sealed = l.sealed[:n-1]
		f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.path, l.size, l.activeFirst = f, active.path, active.bytes, active.firstSeq
	} else {
		l.segIndex = 1
		if err := l.createActive(); err != nil {
			return nil, err
		}
	}

	l.nextSeq = lastSeq + 1
	if l.ckptOK && l.ckptNext > l.nextSeq {
		// The log was fully compacted past its own tail: the checkpoint
		// alone carries the state.
		l.nextSeq = l.ckptNext
	}
	l.recoveredSeq = l.nextSeq - 1
	var total int64
	for _, sg := range l.sealed {
		total += sg.bytes
	}
	l.bytes.Store(total + l.size)
	l.segments.Store(int64(len(l.sealed) + 1))

	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.flusherWG.Add(1)
		go l.flusher()
	}
	return l, nil
}

// segmentPath names segment files so lexical order is numeric order.
func segmentPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", index))
}

// listSegments returns the segment indices present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (l *Log) createActive() error {
	path := segmentPath(l.opts.Dir, l.segIndex)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.path, l.size, l.activeFirst = f, path, 0, 0
	return nil
}

// RecoveredSeq is the durable end of the log at Open time: the highest
// sequence number recovery must replay up to (0 when the log was
// empty). Appends made after Open are not included.
func (l *Log) RecoveredSeq() uint64 { return l.recoveredSeq }

// Checkpoint returns the checkpoint loaded at Open: its payload and the
// first sequence number NOT covered by it (replay starts there). ok is
// false when no valid checkpoint existed.
func (l *Log) Checkpoint() (payload []byte, nextSeq uint64, ok bool) {
	return l.ckptPayload, l.ckptNext, l.ckptOK
}

// SetCompactFloor marks every record below nextSeq as covered by
// restored state, letting rotation drop sealed segments that end below
// it. The host calls it after successfully restoring the Open-time
// checkpoint; WriteCheckpoint advances it automatically.
func (l *Log) SetCompactFloor(nextSeq uint64) {
	l.floor.Store(nextSeq)
	l.rotate.Store(true)
}

// Append frames one record, writes it to the active segment, and — with
// the frame durably in place in the file — invokes deliver with the
// record's sequence number, all under the log mutex. If deliver returns
// an error the frame is truncated back off and the error returned: the
// record never happened. This write-ahead ordering is what makes
// replay-to-last-folded exact: a shard can never fold (or panic on) a
// message whose record is not already on disk.
func (l *Log) Append(kind Kind, pts []Vector, deliver func(seq uint64) error) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed.Load() || l.f == nil {
		return 0, ErrCrashed
	}
	if l.size >= l.opts.SegmentBytes || l.rotate.Swap(false) {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.nextSeq
	frame := appendFrame(nil, kind, seq, pts)
	if h := l.opts.AppendHook; h != nil {
		if n := h(seq, len(frame)); n >= 0 && n < len(frame) {
			// Injected torn write: persist the torn prefix exactly as a
			// real crash would and disable the log.
			l.f.WriteAt(frame[:n], l.size)
			l.f.Sync()
			l.crashed.Store(true)
			return 0, fmt.Errorf("wal: injected crash after %d of %d bytes of seq %d: %w", n, len(frame), seq, ErrCrashed)
		}
	}
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		l.crashed.Store(true)
		return 0, fmt.Errorf("wal: append: %w (%w)", err, ErrCrashed)
	}
	if deliver != nil {
		if err := deliver(seq); err != nil {
			l.f.Truncate(l.size)
			return 0, err
		}
	}
	if l.activeFirst == 0 {
		l.activeFirst = seq
	}
	l.size += int64(len(frame))
	l.bytes.Add(int64(len(frame)))
	l.nextSeq = seq + 1
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			l.crashed.Store(true)
			return 0, fmt.Errorf("wal: fsync: %w (%w)", err, ErrCrashed)
		}
	case SyncInterval:
		l.dirty = true
	}
	return seq, nil
}

// rotateLocked seals the active segment, compacts sealed segments fully
// covered by the checkpoint floor, and opens the next segment. Called
// with l.mu held; an empty active segment is reused as-is.
func (l *Log) rotateLocked() error {
	if l.size == 0 {
		l.compactLocked()
		return nil
	}
	if l.opts.Sync != SyncOff {
		l.f.Sync()
	}
	l.f.Close()
	l.sealed = append(l.sealed, segment{
		path: l.path, bytes: l.size, firstSeq: l.activeFirst, lastSeq: l.nextSeq - 1,
	})
	l.compactLocked()
	l.segIndex++
	if err := l.createActive(); err != nil {
		return err
	}
	l.segments.Store(int64(len(l.sealed) + 1))
	return nil
}

// compactLocked removes sealed segments whose every record is below the
// compaction floor — the checkpoint carries their contents now.
func (l *Log) compactLocked() {
	floor := l.floor.Load()
	if floor == 0 {
		return
	}
	kept := l.sealed[:0]
	for _, sg := range l.sealed {
		if sg.lastSeq != 0 && sg.lastSeq < floor {
			os.Remove(sg.path)
			l.bytes.Add(-sg.bytes)
			continue
		}
		kept = append(kept, sg)
	}
	l.sealed = kept
	l.segments.Store(int64(len(l.sealed) + 1))
}

// Sync flushes the active segment now, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed.Load() || l.f == nil {
		return ErrCrashed
	}
	l.dirty = false
	return l.f.Sync()
}

// flusher is the SyncInterval background loop.
func (l *Log) flusher() {
	defer l.flusherWG.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.crashed.Load() {
				if err := l.f.Sync(); err != nil {
					Logf("wal: %s: background fsync: %v", l.path, err)
					l.crashed.Store(true)
				}
				l.dirty = false
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Replay streams the records with from ≤ seq ≤ to, in order, to fn,
// stopping as soon as to has been delivered. Records below from (they
// are covered by the restored checkpoint) are skipped. It is safe to
// run concurrently with appends: every record with seq ≤ to is fully
// written before the host starts recovery, and Replay stops at to
// without reading into possibly-in-flight tail frames. An error from fn
// or a damaged frame before to aborts the replay.
func (l *Log) Replay(from, to uint64, fn func(Record) error) error {
	if to == 0 || from > to {
		return nil
	}
	l.mu.Lock()
	paths := make([]string, 0, len(l.sealed)+1)
	for _, sg := range l.sealed {
		if sg.lastSeq != 0 && sg.lastSeq < from {
			continue
		}
		paths = append(paths, sg.path)
	}
	paths = append(paths, l.path)
	l.mu.Unlock()

	done := false
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		_, _, _, damaged, err := walkFrames(data, 0, func(r Record) error {
			if r.Seq > to {
				done = true
				return errStopWalk
			}
			if r.Seq < from {
				return nil
			}
			if err := fn(r); err != nil {
				return err
			}
			if r.Seq == to {
				done = true
				return errStopWalk
			}
			return nil
		})
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if damaged {
			return fmt.Errorf("wal: replay: damaged frame in %s before reaching seq %d", path, to)
		}
	}
	return fmt.Errorf("wal: replay: log ends before seq %d", to)
}

// Stats reports total log bytes and segment-file count, lock-free.
func (l *Log) Stats() (bytes int64, segments int) {
	return l.bytes.Load(), int(l.segments.Load())
}

// Crashed reports whether the log has disabled writes after an error or
// an injected crash.
func (l *Log) Crashed() bool { return l.crashed.Load() }

// Close stops the flusher and closes the active segment, fsyncing it
// first when sync is true (the clean-shutdown path). A crashed log is
// never synced — its tail is intentionally left as the crash shaped it.
func (l *Log) Close(sync bool) error {
	l.closeOnce.Do(func() {
		if l.stop != nil {
			close(l.stop)
			l.flusherWG.Wait()
		}
	})
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if sync && !l.crashed.Load() {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
