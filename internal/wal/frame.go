package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"

	"divmax/internal/metric"
)

// Vector is the point type the log stores — the same dense vectors the
// server ingests (divmax.Vector is an alias of metric.Vector, so server
// batches flow through without conversion).
type Vector = metric.Vector

// Kind tags what a record replays as.
type Kind uint8

const (
	// KindIngest: fold the points with ProcessBatch, in order.
	KindIngest Kind = 1
	// KindDelete: apply Delete per point, in order.
	KindDelete Kind = 2
)

// Record is one logged operation.
type Record struct {
	Kind   Kind
	Seq    uint64
	Points []Vector
}

// Frame layout, all little-endian:
//
//	u32 payload length | u32 CRC32C(payload) | payload
//
// payload:
//
//	u8 kind | u64 seq | u32 dim | u32 count | count·dim float64 bits
//
// The CRC covers the payload only; a torn length prefix fails the
// bounds checks, a torn payload fails the CRC — either way the frame
// and everything after it is discarded by recovery.
const (
	frameHeader   = 8
	payloadHeader = 1 + 8 + 4 + 4
	// maxFrame bounds a single record well above the largest ingest
	// body the server accepts, so a corrupt length prefix cannot drive
	// a giant allocation during recovery.
	maxFrame = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errStopWalk is the sentinel a walkFrames callback returns to stop the
// walk cleanly.
var errStopWalk = errors.New("wal: stop walk")

// appendFrame encodes one record onto buf.
func appendFrame(buf []byte, kind Kind, seq uint64, pts []Vector) []byte {
	dim := 0
	if len(pts) > 0 {
		dim = len(pts[0])
	}
	payloadLen := payloadHeader + len(pts)*dim*8
	start := len(buf)
	buf = append(buf, make([]byte, frameHeader+payloadLen)...)
	payload := buf[start+frameHeader:]
	payload[0] = byte(kind)
	binary.LittleEndian.PutUint64(payload[1:], seq)
	binary.LittleEndian.PutUint32(payload[9:], uint32(dim))
	binary.LittleEndian.PutUint32(payload[13:], uint32(len(pts)))
	off := payloadHeader
	for _, p := range pts {
		for _, x := range p {
			binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(x))
			off += 8
		}
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodePayload rebuilds a record from a CRC-verified payload.
func decodePayload(payload []byte) (Record, bool) {
	if len(payload) < payloadHeader {
		return Record{}, false
	}
	kind := Kind(payload[0])
	if kind != KindIngest && kind != KindDelete {
		return Record{}, false
	}
	seq := binary.LittleEndian.Uint64(payload[1:])
	dim := int(binary.LittleEndian.Uint32(payload[9:]))
	count := int(binary.LittleEndian.Uint32(payload[13:]))
	if seq == 0 || dim < 0 || count < 0 || len(payload) != payloadHeader+count*dim*8 {
		return Record{}, false
	}
	pts := make([]Vector, count)
	off := payloadHeader
	for i := range pts {
		v := make(Vector, dim)
		for j := range v {
			v[j] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		pts[i] = v
	}
	return Record{Kind: kind, Seq: seq, Points: pts}, true
}

// walkFrames validates data frame by frame, calling fn (when non-nil)
// for each well-formed record. want is the expected sequence number of
// the first frame (0 accepts any); subsequent frames must be
// contiguous. It returns the number of valid bytes before the first
// damage (len(data) when clean), the first and last sequence numbers
// seen (0 when none), whether damage was found, and any error from fn
// (errStopWalk stops cleanly and is not returned).
func walkFrames(data []byte, want uint64, fn func(Record) error) (valid int64, first, last uint64, damaged bool, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return int64(off), first, last, true, nil
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
		if payloadLen < payloadHeader || payloadLen > maxFrame || len(data)-off-frameHeader < payloadLen {
			return int64(off), first, last, true, nil
		}
		payload := data[off+frameHeader : off+frameHeader+payloadLen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
			return int64(off), first, last, true, nil
		}
		rec, ok := decodePayload(payload)
		if !ok || (want != 0 && rec.Seq != want) {
			return int64(off), first, last, true, nil
		}
		if fn != nil {
			if ferr := fn(rec); ferr != nil {
				if errors.Is(ferr, errStopWalk) {
					return int64(off + frameHeader + payloadLen), firstOr(first, rec.Seq), rec.Seq, false, nil
				}
				return int64(off), first, last, false, ferr
			}
		}
		first = firstOr(first, rec.Seq)
		last = rec.Seq
		want = rec.Seq + 1
		off += frameHeader + payloadLen
	}
	return int64(off), first, last, false, nil
}

func firstOr(first, seq uint64) uint64 {
	if first == 0 {
		return seq
	}
	return first
}
