package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Checkpoint file: a single opaque payload (the host's serialized shard
// state) plus the first sequence number not covered by it, written to a
// temp file and atomically renamed over the previous checkpoint. A
// crash at any point leaves either the old checkpoint or the new one —
// never a torn mix — and recovery falls back to a longer log replay if
// the file is missing or fails its CRC.
//
// Layout, little-endian:
//
//	8-byte magic | u32 version | u64 nextSeq | u32 payload length |
//	u32 CRC32C(payload) | payload
const (
	ckptName    = "checkpoint.ckpt"
	ckptTmpName = "checkpoint.tmp"
	ckptMagic   = "DVMXCKP1"
	ckptHeader  = 8 + 4 + 8 + 4 + 4
	ckptVersion = 1
)

// WriteCheckpoint atomically replaces the checkpoint with payload,
// recording nextSeq as the first sequence number a recovery must still
// replay after restoring it. On success the compaction floor advances
// and the next append rotates the active segment, so sealed segments
// the checkpoint covers get dropped. It never takes the append mutex —
// the host's shard goroutine calls it while appenders keep running.
func (l *Log) WriteCheckpoint(payload []byte, nextSeq uint64) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	if l.crashed.Load() {
		return ErrCrashed
	}
	buf := make([]byte, ckptHeader+len(payload))
	copy(buf, ckptMagic)
	binary.LittleEndian.PutUint32(buf[8:], ckptVersion)
	binary.LittleEndian.PutUint64(buf[12:], nextSeq)
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[24:], crc32.Checksum(payload, castagnoli))
	copy(buf[ckptHeader:], payload)

	tmp := filepath.Join(l.opts.Dir, ckptTmpName)
	if h := l.opts.CheckpointHook; h != nil {
		if n := h(len(buf)); n >= 0 && n < len(buf) {
			// Injected mid-checkpoint crash: leave a torn tmp file (the
			// previous checkpoint, if any, stays valid) and disable the
			// log.
			os.WriteFile(tmp, buf[:n], 0o644)
			l.crashed.Store(true)
			return fmt.Errorf("wal: injected crash after %d of %d checkpoint bytes: %w", n, len(buf), ErrCrashed)
		}
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.opts.Dir, ckptName)); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	syncDir(l.opts.Dir)
	l.SetCompactFloor(nextSeq)
	return nil
}

// loadCheckpoint reads and validates the checkpoint file at Open; any
// failure (missing file, bad magic, bad CRC) simply means recovery
// replays the full log.
func (l *Log) loadCheckpoint() {
	data, err := os.ReadFile(filepath.Join(l.opts.Dir, ckptName))
	if err != nil {
		return
	}
	if len(data) < ckptHeader || string(data[:8]) != ckptMagic {
		Logf("wal: %s: checkpoint header invalid, ignoring", l.opts.Dir)
		return
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != ckptVersion {
		Logf("wal: %s: checkpoint version %d (want %d), ignoring", l.opts.Dir, v, ckptVersion)
		return
	}
	nextSeq := binary.LittleEndian.Uint64(data[12:])
	n := int(binary.LittleEndian.Uint32(data[20:]))
	if n < 0 || len(data) != ckptHeader+n {
		Logf("wal: %s: checkpoint truncated, ignoring", l.opts.Dir)
		return
	}
	payload := data[ckptHeader:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[24:]) {
		Logf("wal: %s: checkpoint CRC mismatch, ignoring", l.opts.Dir)
		return
	}
	l.ckptPayload, l.ckptNext, l.ckptOK = payload, nextSeq, true
}

// syncDir fsyncs a directory so a rename survives a power cut;
// best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
