package wal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"
)

func init() {
	Logf = func(string, ...any) {} // recovery tests corrupt files on purpose
}

func testVecs(rng *rand.Rand, n, d int) []Vector {
	out := make([]Vector, n)
	for i := range out {
		v := make(Vector, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// collect replays the whole surviving log (no checkpoint restore).
func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if l.RecoveredSeq() == 0 {
		return out
	}
	if err := l.Replay(1, l.RecoveredSeq(), func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func mustAppend(t *testing.T, l *Log, kind Kind, pts []Vector) uint64 {
	t.Helper()
	seq, err := l.Append(kind, pts, nil)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return seq
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	l, err := Open(Options{Dir: dir, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		kind := KindIngest
		if i%5 == 4 {
			kind = KindDelete
		}
		pts := testVecs(rng, 1+rng.Intn(5), 3)
		seq := mustAppend(t, l, kind, pts)
		if seq != uint64(i+1) {
			t.Fatalf("seq %d, want %d", seq, i+1)
		}
		want = append(want, Record{Kind: kind, Seq: seq, Points: pts})
	}
	if err := l.Close(true); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close(false)
	if l2.RecoveredSeq() != 20 {
		t.Fatalf("RecoveredSeq %d, want 20", l2.RecoveredSeq())
	}
	if !reflect.DeepEqual(collect(t, l2), want) {
		t.Fatal("replayed records differ from appended")
	}
	// Appends continue from where the log left off.
	if seq := mustAppend(t, l2, KindIngest, want[0].Points); seq != 21 {
		t.Fatalf("post-reopen seq %d, want 21", seq)
	}
}

func TestDeliverFailureUnwritesRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	pts := []Vector{{1, 2}}
	mustAppend(t, l, KindIngest, pts)
	boom := errors.New("queue full")
	if _, err := l.Append(KindIngest, []Vector{{3, 4}}, func(uint64) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err %v, want the deliver error", err)
	}
	// The failed record never happened: the next append reuses its seq
	// and the file holds exactly two frames.
	if seq := mustAppend(t, l, KindDelete, pts); seq != 2 {
		t.Fatalf("seq %d, want 2 (failed append must not burn a seq)", seq)
	}
	l.Close(true)
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close(false)
	recs := collect(t, l2)
	if len(recs) != 2 || recs[1].Kind != KindDelete {
		t.Fatalf("recovered %d records, want the 2 delivered ones", len(recs))
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 11} {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir, Sync: SyncOff})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(cut)))
			for i := 0; i < 10; i++ {
				mustAppend(t, l, KindIngest, testVecs(rng, 2, 2))
			}
			l.Close(true)

			path := segmentPath(dir, 1)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, int64(len(data)-cut)); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close(false)
			if l2.RecoveredSeq() != 9 {
				t.Fatalf("RecoveredSeq %d, want 9 (only the torn final record lost)", l2.RecoveredSeq())
			}
			if got := collect(t, l2); len(got) != 9 {
				t.Fatalf("recovered %d records, want 9", len(got))
			}
		})
	}
}

func TestCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var offsets []int64
	for i := 0; i < 10; i++ {
		mustAppend(t, l, KindIngest, testVecs(rng, 2, 2))
		offsets = append(offsets, l.size)
	}
	l.Close(true)

	// Flip one byte inside record 6 (offsets[4] is the end of record 5).
	path := segmentPath(dir, 1)
	data, _ := os.ReadFile(path)
	data[offsets[4]+frameHeader+3] ^= 0x40
	os.WriteFile(path, data, 0o644)

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close(false)
	if l2.RecoveredSeq() != 5 {
		t.Fatalf("RecoveredSeq %d, want 5 (damage in record 6 drops it and the suffix)", l2.RecoveredSeq())
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force frequent rotation.
	l, err := Open(Options{Dir: dir, Sync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		mustAppend(t, l, KindIngest, testVecs(rng, 2, 4))
	}
	_, segsBefore := l.Stats()
	if segsBefore < 3 {
		t.Fatalf("expected several segments, got %d", segsBefore)
	}
	// A checkpoint covering everything + one more append compacts all
	// sealed segments.
	if err := l.WriteCheckpoint([]byte("state"), 41); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, KindIngest, testVecs(rng, 1, 4))
	bytesAfter, segsAfter := l.Stats()
	if segsAfter != 1 {
		t.Fatalf("%d segments after full compaction, want 1", segsAfter)
	}
	l.Close(true)

	// Reopen: the checkpoint plus the single surviving record recover.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close(false)
	payload, next, ok := l2.Checkpoint()
	if !ok || string(payload) != "state" || next != 41 {
		t.Fatalf("checkpoint (%q, %d, %v), want (state, 41, true)", payload, next, ok)
	}
	if l2.RecoveredSeq() != 41 {
		t.Fatalf("RecoveredSeq %d, want 41", l2.RecoveredSeq())
	}
	n := 0
	if err := l2.Replay(next, l2.RecoveredSeq(), func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records past the checkpoint, want 1", n)
	}
	if b, _ := l2.Stats(); b <= 0 || b > bytesAfter {
		t.Fatalf("stats bytes %d out of range (0, %d]", b, bytesAfter)
	}
}

func TestCheckpointCrashKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	hookArmed := false
	l, err := Open(Options{
		Dir: dir, Sync: SyncOff,
		CheckpointHook: func(size int) int {
			if hookArmed {
				return size / 2
			}
			return -1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, KindIngest, []Vector{{1}})
	if err := l.WriteCheckpoint([]byte("good"), 2); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, KindIngest, []Vector{{2}})
	hookArmed = true
	if err := l.WriteCheckpoint([]byte("never-lands"), 3); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err %v, want ErrCrashed", err)
	}
	// Crashed log: all mutations fail closed.
	if _, err := l.Append(KindIngest, []Vector{{3}}, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append on crashed log: %v, want ErrCrashed", err)
	}
	l.Close(false)

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close(false)
	payload, next, ok := l2.Checkpoint()
	if !ok || string(payload) != "good" || next != 2 {
		t.Fatalf("checkpoint (%q, %d, %v), want the previous (good, 2, true)", payload, next, ok)
	}
	if l2.RecoveredSeq() != 2 {
		t.Fatalf("RecoveredSeq %d, want 2", l2.RecoveredSeq())
	}
	if _, err := os.Stat(filepath.Join(dir, ckptTmpName)); !os.IsNotExist(err) {
		t.Fatal("stale checkpoint.tmp survived reopen")
	}
}

func TestAppendCrashTearsExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	l, err := Open(Options{
		Dir: dir, Sync: SyncAlways,
		AppendHook: func(seq uint64, size int) int {
			calls++
			if calls == 3 {
				return 5 // tear the third append after 5 bytes
			}
			return -1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, KindIngest, []Vector{{1, 1}})
	mustAppend(t, l, KindIngest, []Vector{{2, 2}})
	if _, err := l.Append(KindIngest, []Vector{{3, 3}}, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err %v, want ErrCrashed", err)
	}
	l.Close(false)

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close(false)
	recs := collect(t, l2)
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want the 2 acknowledged ones", len(recs))
	}
	// The torn tail was truncated; appending works again after reopen.
	if seq := mustAppend(t, l2, KindIngest, []Vector{{3, 3}}); seq != 3 {
		t.Fatalf("seq %d, want 3", seq)
	}
}

func TestSyncPoliciesSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir, Sync: pol, SyncEvery: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				mustAppend(t, l, KindIngest, testVecs(rng, 3, 2))
			}
			if pol == SyncInterval {
				time.Sleep(25 * time.Millisecond) // let the flusher run
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(true); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(Options{Dir: dir, Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			if got := len(collect(t, l2)); got != 10 {
				t.Fatalf("recovered %d records, want 10", got)
			}
			l2.Close(false)
		})
	}
}

// TestFlusherGoroutineStops pins that Open(SyncInterval)+Close leaks no
// background flusher (the chaos suites re-check this under -race at the
// server level).
func TestFlusherGoroutineStops(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		l, err := Open(Options{Dir: t.TempDir(), Sync: SyncInterval, SyncEvery: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, l, KindIngest, []Vector{{1}})
		l.Close(true)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines %d > %d before: flusher leaked", n, before)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff, "": SyncInterval} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRecordSpecialFloats(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	// The server never ingests NaN/Inf, but the frame format must not
	// care: exact bit patterns round-trip.
	pts := []Vector{{math.Copysign(0, -1), math.MaxFloat64, math.SmallestNonzeroFloat64, 1e-300}}
	mustAppend(t, l, KindIngest, pts)
	l.Close(true)
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close(false)
	recs := collect(t, l2)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	for j, x := range recs[0].Points[0] {
		if math.Float64bits(x) != math.Float64bits(pts[0][j]) {
			t.Fatalf("coordinate %d: bits %x, want %x", j, math.Float64bits(x), math.Float64bits(pts[0][j]))
		}
	}
}
