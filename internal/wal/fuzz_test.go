package wal

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"testing"
)

// FuzzRecordRoundTrip pins that encode→decode is the identity for every
// well-formed record, and that the encoder output always passes its own
// frame validation.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(1), uint16(3), uint16(2), int64(42))
	f.Add(uint8(2), uint64(1<<40), uint16(1), uint16(0), int64(7))
	f.Add(uint8(1), uint64(9), uint16(0), uint16(4), int64(0))
	f.Fuzz(func(t *testing.T, kindRaw uint8, seq uint64, count, dim uint16, seed int64) {
		kind := KindIngest
		if kindRaw%2 == 0 {
			kind = KindDelete
		}
		if seq == 0 {
			seq = 1
		}
		c, d := int(count%64), int(dim%32)
		pts := make([]Vector, c)
		x := uint64(seed)
		for i := range pts {
			v := make(Vector, d)
			for j := range v {
				x = x*6364136223846793005 + 1442695040888963407
				v[j] = math.Float64frombits(x)
				if math.IsNaN(v[j]) || math.IsInf(v[j], 0) {
					v[j] = float64(x % 1000)
				}
			}
			pts[i] = v
		}
		frame := appendFrame(nil, kind, seq, pts)
		valid, first, last, damaged, err := walkFrames(frame, seq, func(r Record) error {
			if r.Kind != kind || r.Seq != seq {
				t.Fatalf("header round-trip: got (%d,%d) want (%d,%d)", r.Kind, r.Seq, kind, seq)
			}
			if len(r.Points) != len(pts) {
				t.Fatalf("count round-trip: %d vs %d", len(r.Points), len(pts))
			}
			for i := range pts {
				if d == 0 {
					continue
				}
				for j := range pts[i] {
					if math.Float64bits(r.Points[i][j]) != math.Float64bits(pts[i][j]) {
						t.Fatalf("point %d coord %d changed bits", i, j)
					}
				}
			}
			return nil
		})
		if err != nil || damaged || valid != int64(len(frame)) || first != seq || last != seq {
			t.Fatalf("self-validation failed: valid=%d/%d damaged=%v first=%d last=%d err=%v",
				valid, len(frame), damaged, first, last, err)
		}
	})
}

// FuzzTornTail writes a few known records, applies arbitrary damage
// (truncation plus byte flips at fuzzer-chosen offsets) to the segment
// file, and requires recovery to (a) never panic or error, and (b) keep
// every record strictly before the first damaged byte.
func FuzzTornTail(f *testing.F) {
	f.Add(uint16(0), uint32(0), uint8(0))
	f.Add(uint16(1), uint32(9), uint8(0xff))
	f.Add(uint16(57), uint32(200), uint8(1))
	f.Fuzz(func(t *testing.T, truncBy uint16, flipAt uint32, flipMask uint8) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Sync: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		const nRecords = 8
		var frames [][]byte
		for i := 0; i < nRecords; i++ {
			pts := []Vector{{float64(i), float64(i) + 0.5}, {float64(-i), 0}}
			seq, err := l.Append(KindIngest, pts, nil)
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, appendFrame(nil, KindIngest, seq, pts))
		}
		if err := l.Close(true); err != nil {
			t.Fatal(err)
		}

		path := segmentPath(dir, 1)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// Damage: truncate then flip one byte.
		damageAt := len(data)
		if int(truncBy) > 0 {
			cut := len(data) - int(truncBy)%len(data)
			data = data[:cut]
			damageAt = cut
		}
		if flipMask != 0 && len(data) > 0 {
			at := int(flipAt) % len(data)
			data[at] ^= flipMask
			if at < damageAt {
				damageAt = at
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Count the records that live entirely before the first damaged
		// byte — recovery must keep at least these.
		mustSurvive := 0
		off := 0
		for _, fr := range frames {
			if off+len(fr) <= damageAt {
				mustSurvive++
				off += len(fr)
			} else {
				break
			}
		}

		l2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("recovery errored: %v", err)
		}
		defer l2.Close(false)

		got := 0
		if l2.RecoveredSeq() > 0 {
			err = l2.Replay(1, l2.RecoveredSeq(), func(r Record) error {
				if int(r.Seq) != got+1 {
					t.Fatalf("replay out of order: seq %d at position %d", r.Seq, got)
				}
				got++
				return nil
			})
			if err != nil {
				t.Fatalf("replay errored: %v", err)
			}
		}
		if got < mustSurvive {
			t.Fatalf("recovered %d records, damage at byte %d requires at least %d", got, damageAt, mustSurvive)
		}
		// A flip can leave a frame coincidentally valid only if CRC32C
		// collides; with an 8-record log a surviving count above nRecords
		// is impossible.
		if got > nRecords {
			t.Fatalf("recovered %d records from a %d-record log", got, nRecords)
		}

		// The recovered log must accept appends again.
		if _, err := l2.Append(KindIngest, []Vector{{1}}, nil); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}

// FuzzCheckpointHeader feeds arbitrary bytes to the checkpoint loader:
// it must never panic and must only accept files it wrote itself.
func FuzzCheckpointHeader(f *testing.F) {
	good := make([]byte, ckptHeader+5)
	copy(good, ckptMagic)
	binary.LittleEndian.PutUint32(good[8:], ckptVersion)
	f.Add(good)
	f.Add([]byte("DVMXCKP1 short"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(dir+"/"+ckptName, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir, Sync: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close(false)
		if payload, _, ok := l.Checkpoint(); ok {
			// Accepted: must be a structurally valid file whose payload
			// is byte-exact from the input.
			if len(data) < ckptHeader || !bytes.Equal(payload, data[ckptHeader:]) {
				t.Fatal("loader accepted a checkpoint it could not have written")
			}
		}
	})
}
