# Targets mirror .github/workflows/ci.yml exactly, so local runs and CI
# cannot drift: CI calls these same targets.

GO ?= go

.PHONY: build test race chaos cluster-chaos durability envelope bench bench-json fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-injection suites under the race detector: shard panics and
# supervised restarts, restart-budget exhaustion, wedged shards shedding
# and recovering, dropped replies hitting deadlines, degraded queries,
# and the durability crash suite (torn WAL appends and checkpoints,
# corrupt tails, crash-shaped restarts) — with per-test goroutine-leak
# checks. The timeout guards against a supervision bug wedging the run
# rather than failing it.
chaos:
	$(GO) test -race -timeout 120s ./internal/faults ./internal/server ./internal/wal

# The multi-node coordinator tier under the race detector: worker kill /
# restart with WAL replay and bit-identical recovery against an
# uninterrupted twin, flaky links answered by hedging, rate-limited
# workers backed off without starving ingest, quorum fail-closed
# behavior, and the retry/backoff schedule — with per-test
# goroutine-leak checks.
cluster-chaos:
	$(GO) test -race -timeout 180s ./internal/cluster ./internal/faults

# The crash-recovery paths with the strictest fsync policy forced onto
# every WAL, so the durability contract is exercised with a real fsync
# per record, not just the test default.
durability:
	DIVMAX_TEST_FSYNC=always $(GO) test -race -timeout 120s -run 'Durable|Graceful|AbruptClose|CheckpointTicker|CloseTimeout|Crash|Corrupt' ./internal/server ./internal/faults

# The envelope-equivalence harness that pins the blocked kernel tier:
# blocked-vs-generic distances within the documented error bound (bit-
# identical below metric.BlockedMinDim and on integer grids), position-
# independent sub-range fills, and identical GMM/SMM/engine selections.
# Run twice — once with the toolchain default microarchitecture level
# and once pinned to GOAMD64=v1 — so a codegen difference between FMA-
# capable and baseline targets cannot silently change the tier's
# results. (On non-amd64 hosts the pinned run is a no-op repeat: the
# variable is ignored, which is exactly the intended "no worse than
# default" behavior.)
envelope:
	$(GO) test -run 'TestEnvelope' -count=1 ./internal/metric
	GOAMD64=v1 $(GO) test -run 'TestEnvelope' -count=1 ./internal/metric

# Run every benchmark once (no timing comparisons) so bench code keeps
# compiling and running.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regenerate the performance trajectory (BENCH_PR10.json): GMM fast vs
# pre-PR-2 generic (plus the blocked-tier high-dimensional rows vs the
# four-lane scalar kernel on clustered data), SMM ingest, end-to-end
# divmaxd throughput, the round-2 solve path (matrix vs generic),
# cached vs cold /query, the sharded/tiled solve-parallel worker sweep
# (now with d ∈ {128, 512} rows through the blocked fill), the
# incremental_ingest churn suite (delta-patched cache vs forced full
# rebuilds), the dynamic_churn insert/delete/query interleave over the
# /v1 API at d ∈ {8, 128, 512}, the overload write-storm (load shedding
# on vs off), the durability suite (WAL fsync overhead, checkpoint vs
# cold-replay recovery), and the cluster suite (the coordinator tier
# healthy vs a flaky worker link, hedging off vs on). CI uploads the
# JSON as an artifact alongside the committed BENCH_PR*.json baselines.
bench-json:
	$(GO) run ./cmd/bench -out BENCH_PR10.json

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race
