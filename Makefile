# Targets mirror .github/workflows/ci.yml exactly, so local runs and CI
# cannot drift: CI calls these same targets.

GO ?= go

.PHONY: build test race chaos bench bench-json fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-injection suites under the race detector: shard panics and
# supervised restarts, restart-budget exhaustion, wedged shards shedding
# and recovering, dropped replies hitting deadlines, and degraded
# queries — with per-test goroutine-leak checks. The timeout guards
# against a supervision bug wedging the run rather than failing it.
chaos:
	$(GO) test -race -timeout 120s ./internal/faults ./internal/server

# Run every benchmark once (no timing comparisons) so bench code keeps
# compiling and running.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regenerate the performance trajectory (BENCH_PR7.json): GMM fast vs
# pre-PR-2 generic, SMM ingest, end-to-end divmaxd throughput, the
# round-2 solve path (matrix vs generic), cached vs cold /query, the
# sharded/tiled solve-parallel worker sweep, the incremental_ingest
# churn suite (delta-patched cache vs forced full rebuilds), the
# dynamic_churn insert/delete/query interleave over the /v1 API, and
# the overload write-storm (load shedding on vs off). CI uploads the
# JSON as an artifact alongside the committed BENCH_PR*.json baselines.
bench-json:
	$(GO) run ./cmd/bench -out BENCH_PR7.json

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race
