# Targets mirror .github/workflows/ci.yml exactly, so local runs and CI
# cannot drift: CI calls these same targets.

GO ?= go

.PHONY: build test race bench fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every benchmark once (no timing comparisons) so bench code keeps
# compiling and running.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race
