package divmax

import (
	"divmax/internal/streamalg"
)

// Stream feeds points to a consumer, calling emit once per point in
// stream order. StreamingSolveTwoPass invokes its stream twice, so the
// function must replay the same logical sequence on each call.
type Stream[P any] = streamalg.Stream[P]

// SliceStream adapts an in-memory slice to a Stream.
func SliceStream[P any](pts []P) Stream[P] { return streamalg.SliceStream(pts) }

// StreamingSolve is the paper's one-pass streaming algorithm (Theorem 3):
// it builds a core-set on the fly with the SMM doubling algorithm (or
// SMM-EXT with per-center delegates for the four delegate-based
// measures), using memory independent of the stream length — O(k′)
// points, or O(k′·k) with delegates — and then runs the sequential
// α-approximation on the core-set. The end-to-end factor is α+ε for k′
// sized per Lemmas 3–4; in practice k′ a small multiple of k suffices.
func StreamingSolve[P any](m Measure, stream Stream[P], k, kprime int, d Distance[P]) []P {
	return streamalg.OnePass(m, stream, k, kprime, d)
}

// StreamingSolveTwoPass is the 2-pass, memory-reduced algorithm of
// Theorem 9 for remote-clique, -star, -bipartition, and -tree: pass 1
// builds a generalized core-set with only O(k′) memory (counts instead of
// delegates), a coherent subset of expanded size k is extracted in
// memory, and pass 2 instantiates its multiplicities with distinct points
// from the stream. It returns an error for the two measures that do not
// need it (remote-edge, remote-cycle — use StreamingSolve, already
// O(k′)).
func StreamingSolveTwoPass[P any](m Measure, stream Stream[P], k, kprime int, d Distance[P]) ([]P, error) {
	return streamalg.TwoPass(m, stream, k, kprime, d)
}

// StreamCoreset is an incremental core-set builder for callers that drive
// their own ingestion loop (sockets, files, pipelines): feed points with
// Process, read the current core-set with Coreset, and hand it to
// MaxDiversity whenever a solution is needed. Implementations are not
// safe for concurrent Process calls.
type StreamCoreset[P any] interface {
	// Process consumes the next stream point.
	Process(p P)
	// ProcessBatch consumes a slice of stream points, equivalent to
	// calling Process on each in order. Prefer it when points already
	// arrive in chunks: the scan of the center set stays hot in cache
	// across the batch, and on the Euclidean fast path (metric.Vector
	// points under the Euclidean distance) the whole batch runs on the
	// flat squared-distance kernels.
	ProcessBatch(batch []P)
	// Coreset returns the core-set of everything processed so far.
	Coreset() []P
	// Snapshot returns the core-set together with the processing
	// statistics needed to merge and monitor independent processors.
	// Like Coreset, it may be called between Process calls but not
	// concurrently with them.
	Snapshot() CoresetSnapshot[P]
	// SnapshotSince returns an incremental view relative to an earlier
	// snapshot identified by its generation and append-log position: a
	// pure delta of the points that joined the core-set since, when the
	// core-set has not restructured (Partial), or a full snapshot when
	// it has (the generation moved). Pass (0, -1) for an unconditional
	// full snapshot. Same concurrency contract as Snapshot.
	SnapshotSince(gen uint64, pos int) CoresetDelta[P]
	// Delete removes every retained point at metric distance 0 from p
	// — the fully dynamic extension (deletions alongside insertions).
	// A delete of a never-retained value is a free tombstone; deleting
	// a spare leaves the core-set output untouched; deleting a core-set
	// point evicts it, re-covers locally (a deleted center is replaced
	// by a retained spare or a surviving delegate), and bumps the
	// snapshot generation so stale cached views rebuild rather than
	// patch. Same concurrency contract as Process.
	Delete(p P) DeleteOutcome
	// StoredPoints reports current memory use in points.
	StoredPoints() int
	// Checkpoint serializes the processor's complete state — centers,
	// delegates, spares, thresholds, generation counters, append log —
	// so a durable host can persist the core-set mid-stream and resume
	// it with Restore after a crash. Float values round-trip as exact
	// bit patterns: a restored processor fed the same stream suffix is
	// bit-identical to one that was never interrupted. Same concurrency
	// contract as Snapshot.
	Checkpoint() ([]byte, error)
	// Restore replaces the processor's state with a checkpoint taken
	// from a processor with identical construction parameters (measure
	// family, k, k′); mismatched parameters are rejected with an error
	// and the processor is left unchanged — callers then rebuild by
	// replaying raw points instead. Same concurrency contract as
	// Process.
	Restore(data []byte) error
}

// DeleteOutcome reports what a StreamCoreset.Delete removed: nothing
// retained (a tombstone), only spares, or a core-set point (an
// eviction, which moves the snapshot generation).
type DeleteOutcome = streamalg.DeleteOutcome

const (
	// DeleteAbsent: no retained copy matched — a pure tombstone.
	DeleteAbsent = streamalg.DeleteAbsent
	// DeleteSpare: only spare points were removed; the core-set output
	// and the snapshot generation are unchanged.
	DeleteSpare = streamalg.DeleteSpare
	// DeleteEvicted: a core-set point was removed and the generation
	// bumped; caches built on earlier snapshots must rebuild.
	DeleteEvicted = streamalg.DeleteEvicted
)

// CoresetSnapshot is a point-in-time view of a StreamCoreset. Because the
// underlying core-sets are composable, snapshots taken from independent
// processors fed disjoint shards of a stream can be merged — hand their
// Points to MapReduceSolveCoresets (or union them and call MaxDiversity)
// for a solution over everything any shard has processed, with the same
// α+ε guarantee as a single processor over the whole stream. This is the
// paper's round-1/round-2 split kept resident and online; the divmaxd
// server is built on it. The round-2 solve over a merged snapshot union
// runs on the flat distance-matrix engine when the points are Vectors
// under Euclidean (see internal/sequential), and divmaxd additionally
// caches the merged union and its matrix across queries of an unchanged
// stream.
type CoresetSnapshot[P any] struct {
	// Points is the core-set of everything processed so far.
	Points []P
	// Radius bounds the distance from any processed point to the kernel
	// (4·d_i, see the phase invariants of Section 4). It is 0 while the
	// initialization prefix is still being collected.
	Radius float64
	// Processed counts the stream points consumed so far.
	Processed int64
	// Stored counts the points currently held in memory.
	Stored int
}

// CoresetDelta is the incremental view SnapshotSince returns. The
// underlying SMM/SMM-EXT processors restructure only during merge
// phases; between two restructurings the core-set's point set only ever
// grows, and the processors log exactly the points that join it. A
// delta therefore comes in two shapes:
//
//   - Partial: the earlier snapshot's core-set has not restructured —
//     Points holds only the points appended since (possibly none), and
//     the earlier point set united with Points is a superset of the
//     processor's current core-set that still contains every current
//     core-set point. Solving over that union keeps the full core-set
//     guarantee: it is a set of genuine stream points sandwiched
//     between the current core-set and the processed prefix.
//   - Full (!Partial): the core-set restructured (Gen moved past the
//     caller's) — Points is a complete Snapshot and the earlier view
//     must be discarded.
//
// Gen and Pos identify this view for the next SnapshotSince call. The
// divmaxd query cache uses deltas to patch its merged union and extend
// its solve engine instead of rebuilding both on every ingest.
type CoresetDelta[P any] struct {
	CoresetSnapshot[P]
	// Gen counts the processor's restructurings (cluster merges and the
	// radius doublings they run under) at snapshot time.
	Gen uint64
	// Pos is the processor's append-log position at snapshot time; pass
	// Gen and Pos back to a later SnapshotSince for the next delta.
	Pos int
	// Partial reports that Points extends the earlier view instead of
	// replacing it.
	Partial bool
}

// snapshotter is the slice of the SMM/SMM-EXT API a CoresetSnapshot is
// built from.
type snapshotter[P any] interface {
	Result() []P
	CoverageRadius() float64
	Processed() int64
	StoredPoints() int
}

// deltaSnapshotter adds the incremental-snapshot slice of the SMM and
// SMM-EXT API: the restructure counter and the per-generation append
// log.
type deltaSnapshotter[P any] interface {
	snapshotter[P]
	Generation() uint64
	AppendLogLen() int
	AppendedSince(pos int) []P
}

func snapshotOf[P any](s snapshotter[P]) CoresetSnapshot[P] {
	return CoresetSnapshot[P]{
		Points:    s.Result(),
		Radius:    s.CoverageRadius(),
		Processed: s.Processed(),
		Stored:    s.StoredPoints(),
	}
}

func deltaOf[P any](s deltaSnapshotter[P], gen uint64, pos int) CoresetDelta[P] {
	out := CoresetDelta[P]{Gen: s.Generation(), Pos: s.AppendLogLen()}
	if pos >= 0 && gen == out.Gen && pos <= out.Pos {
		out.Partial = true
		out.CoresetSnapshot = CoresetSnapshot[P]{
			Points:    s.AppendedSince(pos),
			Radius:    s.CoverageRadius(),
			Processed: s.Processed(),
			Stored:    s.StoredPoints(),
		}
		return out
	}
	out.CoresetSnapshot = snapshotOf[P](s)
	return out
}

type smmAdapter[P any] struct{ *streamalg.SMM[P] }

func (a smmAdapter[P]) Coreset() []P { return a.Result() }

func (a smmAdapter[P]) Snapshot() CoresetSnapshot[P] { return snapshotOf[P](a.SMM) }

func (a smmAdapter[P]) SnapshotSince(gen uint64, pos int) CoresetDelta[P] {
	return deltaOf[P](a.SMM, gen, pos)
}

type smmExtAdapter[P any] struct{ *streamalg.SMMExt[P] }

func (a smmExtAdapter[P]) Coreset() []P { return a.Result() }

func (a smmExtAdapter[P]) Snapshot() CoresetSnapshot[P] { return snapshotOf[P](a.SMMExt) }

func (a smmExtAdapter[P]) SnapshotSince(gen uint64, pos int) CoresetDelta[P] {
	return deltaOf[P](a.SMMExt, gen, pos)
}

// NewStreamCoreset returns the streaming core-set processor appropriate
// for measure m: SMM for remote-edge and remote-cycle, SMM-EXT for the
// delegate-based measures. It panics if k < 1 or kprime < k.
func NewStreamCoreset[P any](m Measure, k, kprime int, d Distance[P]) StreamCoreset[P] {
	if m.NeedsInjectiveProxy() {
		return smmExtAdapter[P]{streamalg.NewSMMExt(k, kprime, d)}
	}
	return smmAdapter[P]{streamalg.NewSMM(k, kprime, d)}
}

// NewDynamicStreamCoreset is NewStreamCoreset tuned for deletion-heavy
// streams: on the SMM family it additionally retains up to spares
// absorbed points per center (promotion candidates for center
// deletions, at the cost of up to spares·(k′+1) extra points in
// memory); the SMM-EXT family's delegate sets already provide
// promotion candidates, so spares is ignored there. Delete works on
// every StreamCoreset — this constructor only improves how much of a
// cluster survives its center's deletion. spares ≤ 0 retains none
// (identical to NewStreamCoreset).
func NewDynamicStreamCoreset[P any](m Measure, k, kprime, spares int, d Distance[P]) StreamCoreset[P] {
	if m.NeedsInjectiveProxy() {
		return smmExtAdapter[P]{streamalg.NewSMMExt(k, kprime, d)}
	}
	s := streamalg.NewSMM(k, kprime, d)
	s.SetSpareCap(spares)
	return smmAdapter[P]{s}
}
